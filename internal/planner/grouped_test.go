package planner

import (
	"fmt"
	"strings"
	"testing"

	"trac/internal/exec"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/txn"
	"trac/internal/types"
)

// jobsFixture builds JobLog(mach_id, user, cpu_seconds) with known sums —
// the intro's "how many CPU seconds have my jobs used" workload.
func jobsFixture(t *testing.T) (*Planner, *txn.Manager) {
	t.Helper()
	cat := storage.NewCatalog()
	mgr := txn.NewManager()
	s, err := storage.NewSchema([]storage.Column{
		{Name: "mach_id", Kind: types.KindString},
		{Name: "job_user", Kind: types.KindString},
		{Name: "cpu_seconds", Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetSourceColumn("mach_id")
	tbl := storage.NewTable("JobLog", s)
	if err := cat.Create(tbl); err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		mach, user string
		cpu        int64
	}{
		{"m1", "alice", 10}, {"m1", "bob", 20}, {"m2", "alice", 30},
		{"m2", "alice", 5}, {"m3", "carol", 7}, {"m3", "bob", 1},
	}
	tx := mgr.Begin()
	for _, r := range rows {
		tx.InsertRow(tbl, storage.NewRow([]types.Value{
			types.NewString(r.mach), types.NewString(r.user), types.NewInt(r.cpu),
		}, 0))
	}
	tx.Commit()
	return New(cat), mgr
}

func rowsOf(t *testing.T, p *Planner, mgr *txn.Manager, sql string) []string {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.PlanSelect(sel, mgr.ReadSnapshot())
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	rows, err := exec.Drain(pl.Root)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	var out []string
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

func TestGroupBySum(t *testing.T) {
	p, mgr := jobsFixture(t)
	got := rowsOf(t, p, mgr, `SELECT job_user, SUM(cpu_seconds) FROM JobLog GROUP BY job_user ORDER BY job_user`)
	want := []string{"alice,45", "bob,21", "carol,7"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestGroupByMultipleAggs(t *testing.T) {
	p, mgr := jobsFixture(t)
	got := rowsOf(t, p, mgr, `SELECT mach_id, COUNT(*), MIN(cpu_seconds), MAX(cpu_seconds), AVG(cpu_seconds)
		FROM JobLog GROUP BY mach_id ORDER BY mach_id`)
	want := []string{"m1,2,10,20,15", "m2,2,5,30,17.5", "m3,2,1,7,4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestHaving(t *testing.T) {
	p, mgr := jobsFixture(t)
	got := rowsOf(t, p, mgr, `SELECT job_user, SUM(cpu_seconds) FROM JobLog
		GROUP BY job_user HAVING SUM(cpu_seconds) > 10 ORDER BY 2 DESC`)
	want := []string{"alice,45", "bob,21"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// HAVING referencing an aggregate not in the select list.
	got = rowsOf(t, p, mgr, `SELECT job_user FROM JobLog GROUP BY job_user HAVING COUNT(*) >= 3`)
	want = []string{"alice"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestGroupByWithWhere(t *testing.T) {
	p, mgr := jobsFixture(t)
	got := rowsOf(t, p, mgr, `SELECT job_user, SUM(cpu_seconds) FROM JobLog
		WHERE mach_id <> 'm2' GROUP BY job_user ORDER BY job_user`)
	want := []string{"alice,10", "bob,21", "carol,7"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestGroupByExpression(t *testing.T) {
	p, mgr := jobsFixture(t)
	// Grouping by a computed expression, selecting the same expression.
	got := rowsOf(t, p, mgr, `SELECT cpu_seconds / 10, COUNT(*) FROM JobLog GROUP BY cpu_seconds / 10 ORDER BY 1`)
	want := []string{"0,3", "1,1", "2,1", "3,1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestGroupByAlias(t *testing.T) {
	p, mgr := jobsFixture(t)
	got := rowsOf(t, p, mgr, `SELECT job_user AS u, COUNT(*) AS n FROM JobLog GROUP BY u ORDER BY n DESC, u`)
	if len(got) != 3 || got[0] != "alice,3" {
		t.Errorf("got %v", got)
	}
}

func TestGlobalAggregateStillWorks(t *testing.T) {
	p, mgr := jobsFixture(t)
	got := rowsOf(t, p, mgr, `SELECT COUNT(*), SUM(cpu_seconds) FROM JobLog`)
	if fmt.Sprint(got) != fmt.Sprint([]string{"6,73"}) {
		t.Errorf("got %v", got)
	}
	// Empty input still yields one row.
	got = rowsOf(t, p, mgr, `SELECT COUNT(*) FROM JobLog WHERE mach_id = 'none'`)
	if fmt.Sprint(got) != fmt.Sprint([]string{"0"}) {
		t.Errorf("got %v", got)
	}
	// But grouped aggregation over empty input yields no rows.
	got = rowsOf(t, p, mgr, `SELECT job_user, COUNT(*) FROM JobLog WHERE mach_id = 'none' GROUP BY job_user`)
	if len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestUngroupedColumnRejected(t *testing.T) {
	p, mgr := jobsFixture(t)
	for _, sql := range []string{
		`SELECT mach_id, COUNT(*) FROM JobLog GROUP BY job_user`,
		`SELECT COUNT(*), mach_id FROM JobLog`,
		`SELECT job_user FROM JobLog GROUP BY job_user HAVING cpu_seconds > 1`,
	} {
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.PlanSelect(sel, mgr.ReadSnapshot()); err == nil {
			t.Errorf("PlanSelect(%q) should fail", sql)
		}
	}
}

func TestGroupByJoin(t *testing.T) {
	// Add a Machines table and group a join result.
	p, mgr := jobsFixture(t)
	s, _ := storage.NewSchema([]storage.Column{
		{Name: "name", Kind: types.KindString},
		{Name: "pool", Kind: types.KindString},
	})
	m := storage.NewTable("Machines", s)
	p.Catalog.Create(m)
	tx := mgr.Begin()
	for _, r := range [][2]string{{"m1", "poolA"}, {"m2", "poolA"}, {"m3", "poolB"}} {
		tx.InsertRow(m, storage.NewRow([]types.Value{types.NewString(r[0]), types.NewString(r[1])}, 0))
	}
	tx.Commit()
	got := rowsOf(t, p, mgr, `SELECT M.pool, SUM(J.cpu_seconds) FROM JobLog J, Machines M
		WHERE J.mach_id = M.name GROUP BY M.pool ORDER BY M.pool`)
	want := []string{"poolA,65", "poolB,8"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestGroupByRoundTripSQL(t *testing.T) {
	src := `SELECT job_user, SUM(cpu_seconds) AS total FROM JobLog WHERE mach_id <> 'm9' GROUP BY job_user HAVING COUNT(*) > 1 ORDER BY total DESC LIMIT 2`
	stmt, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.SQL()
	if !strings.Contains(rendered, "GROUP BY job_user") || !strings.Contains(rendered, "HAVING COUNT(*) > 1") {
		t.Errorf("rendered = %s", rendered)
	}
	if _, err := sqlparser.Parse(rendered); err != nil {
		t.Errorf("re-parse failed: %v", err)
	}
}
