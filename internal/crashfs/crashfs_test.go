package crashfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func readAll(t *testing.T, fsys FS, path string) []byte {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 64)
	for off := int64(0); ; {
		n, err := f.ReadAt(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("readat %s: %v", path, err)
		}
	}
}

func TestMemBasicReadWrite(t *testing.T) {
	m := NewMem()
	f, err := m.OpenFile("a.txt", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := string(readAll(t, m, "a.txt")); got != "hello world" {
		t.Fatalf("content = %q", got)
	}
	info, err := m.Stat("a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 11 {
		t.Fatalf("size = %d", info.Size())
	}
}

func TestMemUnsyncedDataLostOnRecover(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("f", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("durable"))
	f.Sync()
	m.SyncDir(".") // make the create binding durable
	f.Write([]byte(" volatile"))
	// No sync: the tail must vanish across a crash.
	m.SetCrashAt(1)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if !m.Crashed() {
		t.Fatal("fs should be crashed")
	}
	if _, err := m.OpenFile("f", os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: want ErrCrashed, got %v", err)
	}
	m.Recover()
	if got := string(readAll(t, m, "f")); got != "durable" {
		t.Fatalf("recovered content = %q, want only synced bytes", got)
	}
}

func TestMemUnsyncedCreateLostOnRecover(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("ghost", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("data"))
	f.Sync() // file content synced, but the directory entry is not
	f.Close()
	m.Recover()
	if _, err := m.Stat("ghost"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced create survived recovery: %v", err)
	}
}

func TestMemRenameAtomicAcrossCrash(t *testing.T) {
	// A durable rename replaces the old binding entirely; an un-fsynced
	// rename leaves the old binding. Either way exactly one version exists.
	build := func() *Mem {
		m := NewMem()
		f, _ := m.OpenFile("cfg", os.O_CREATE|os.O_WRONLY, 0o644)
		f.Write([]byte("v1"))
		f.Sync()
		f.Close()
		m.SyncDir(".")
		g, _ := m.OpenFile("cfg.tmp", os.O_CREATE|os.O_WRONLY, 0o644)
		g.Write([]byte("v2"))
		g.Sync()
		g.Close()
		m.SyncDir(".")
		return m
	}

	m := build()
	m.Rename("cfg.tmp", "cfg")
	// Crash before SyncDir: old binding must win.
	m.SetCrashAt(1)
	m.SyncDir("nonexistent") // burns the crashpoint on an unrelated op
	m.Recover()
	if got := string(readAll(t, m, "cfg")); got != "v1" {
		t.Fatalf("pre-sync rename leaked: cfg = %q, want v1", got)
	}

	m = build()
	m.Rename("cfg.tmp", "cfg")
	m.SyncDir(".")
	m.Recover()
	if got := string(readAll(t, m, "cfg")); got != "v2" {
		t.Fatalf("post-sync rename lost: cfg = %q, want v2", got)
	}
	if _, err := m.Stat("cfg.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("cfg.tmp should be unlinked after durable rename")
	}
}

func TestMemTornWriteKeepsPrefixOnly(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("base|"))
	f.Sync()
	m.SyncDir(".")
	m.KeepUnsyncedTail = true
	m.SetCrashAt(1)
	if _, err := f.Write([]byte("ABCDEFGH")); !errors.Is(err, ErrCrashed) {
		t.Fatal("write should crash")
	}
	m.Recover()
	got := string(readAll(t, m, "log"))
	if len(got) < len("base|") || got[:5] != "base|" {
		t.Fatalf("synced prefix damaged: %q", got)
	}
	tail := got[5:]
	if tail != "ABCDEFGH"[:len(tail)] {
		t.Fatalf("torn tail %q is not a prefix of the write", tail)
	}
}

func TestMemCrashpointSweepDeterministic(t *testing.T) {
	scenario := func(m *Mem) error {
		f, err := m.OpenFile("a", os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("one")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := m.SyncDir("."); err != nil {
			return err
		}
		if err := m.Rename("a", "b"); err != nil {
			return err
		}
		return m.SyncDir(".")
	}
	probe := NewMem()
	if err := scenario(probe); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	n := probe.MutationCount()
	if n < 6 {
		t.Fatalf("expected >=6 crashpoints, got %d (%v)", n, probe.OpLog())
	}
	for i := 1; i <= n; i++ {
		m := NewMem()
		m.SetCrashAt(i)
		if err := scenario(m); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashpoint %d: want ErrCrashed, got %v", i, err)
		}
		m.Recover()
		// Invariant: at every crashpoint, "b" either does not exist or holds
		// the full synced content; "a"/"b" never hold torn data because the
		// scenario syncs before close.
		for _, name := range []string{"a", "b"} {
			if _, err := m.Stat(name); err == nil {
				if got := string(readAll(t, m, name)); got != "one" && got != "" {
					t.Fatalf("crashpoint %d: %s = %q", i, name, got)
				}
			}
		}
	}
}

func TestMemOpsAfterRecoverWork(t *testing.T) {
	m := NewMem()
	m.SetCrashAt(1)
	if _, err := m.OpenFile("x", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatal("create should crash")
	}
	m.Recover()
	f, err := m.OpenFile("x", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("post-recover create: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("post-recover write: %v", err)
	}
}

func TestMemReadDirAndMkdirAll(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("d/e", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("d/e/one", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	names, err := m.ReadDir("d/e")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "one" {
		t.Fatalf("readdir = %v", names)
	}
}

func TestWriteDurableSurvivesEveryCrashpoint(t *testing.T) {
	write := func(m *Mem) error {
		return WriteDurable(m, "state", func(f File) error {
			_, err := f.Write([]byte("NEW"))
			return err
		})
	}
	probe := NewMem()
	probe.MkdirAll(".", 0o755)
	seed, _ := probe.OpenFile("state", os.O_CREATE|os.O_WRONLY, 0o644)
	seed.Write([]byte("OLD"))
	seed.Sync()
	seed.Close()
	probe.SyncDir(".")
	setup := probe.MutationCount()
	probe.SetCrashAt(0)
	if err := write(probe); err != nil {
		t.Fatalf("clean WriteDurable failed: %v", err)
	}
	n := probe.MutationCount()
	if n < 4 {
		t.Fatalf("expected >=4 crashpoints in WriteDurable, got %d", n)
	}
	_ = setup

	for i := 1; i <= n; i++ {
		m := NewMem()
		m.KeepUnsyncedTail = true
		f, _ := m.OpenFile("state", os.O_CREATE|os.O_WRONLY, 0o644)
		f.Write([]byte("OLD"))
		f.Sync()
		f.Close()
		m.SyncDir(".")
		m.SetCrashAt(i)
		err := write(m)
		m.Recover()
		got := string(readAll(t, m, "state"))
		if err == nil {
			if got != "NEW" {
				t.Fatalf("crashpoint %d: completed write but state = %q", i, got)
			}
			continue
		}
		if got != "OLD" && got != "NEW" {
			t.Fatalf("crashpoint %d: torn state %q", i, got)
		}
	}
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys OS
	path := filepath.Join(dir, "f")
	if err := WriteDurable(fsys, path, func(f File) error {
		_, err := f.Write([]byte("persisted"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := string(readAll(t, fsys, path)); got != "persisted" {
		t.Fatalf("content = %q", got)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "f" {
		t.Fatalf("readdir = %v", names)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(filepath.Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
}
