// Package crashfs abstracts the file operations TRAC's durability layer
// performs (WAL appends, checkpoint dumps, segment spills) behind a small
// interface so tests can substitute a crash-injecting in-memory
// implementation. The injector models the failure surface a real filesystem
// exposes across a power cut:
//
//   - data written but not fsynced may be lost, wholly or partially (torn
//     tail);
//   - a write interrupted mid-call persists an arbitrary prefix (torn
//     write);
//   - namespace operations (create, rename, remove) are volatile until the
//     parent directory is fsynced, while rename itself is atomic — the old
//     or the new binding survives, never a mix;
//   - any operation can fail outright ("the process was killed here").
//
// Every mutating call is a crashpoint: the chaos harness runs a scenario
// once to count operations, then replays it killing at each one in turn and
// asserts recovery lands on a consistent cut.
package crashfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation of a crashed Mem filesystem: the
// simulated process is dead and stays dead until Recover.
var ErrCrashed = errors.New("crashfs: simulated crash")

// File is the subset of *os.File the durability layer needs. Sequential
// reads go through ReadAt (wrap with io.NewSectionReader for a buffered
// stream).
type File interface {
	io.Writer
	io.ReaderAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Name() string
}

// FS is the file-layer interface threaded under the WAL, checkpoint dump,
// and segment-spill writers.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics for the flag subset
	// O_RDONLY, O_RDWR, O_WRONLY, O_CREATE, O_TRUNC, O_APPEND.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making renames/creates/removes of its
	// entries durable.
	SyncDir(name string) error
	// ReadDir lists the names of a directory's entries.
	ReadDir(name string) ([]string, error)
}

// ---------------------------------------------------------------------------
// Real filesystem

// OS is the production FS: a thin passthrough to the os package.
type OS struct{}

type osFile struct{ *os.File }

// OpenFile opens through os.OpenFile.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename renames through os.Rename (atomic on POSIX).
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes through os.Remove.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll creates directories through os.MkdirAll.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Stat stats through os.Stat.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// SyncDir opens the directory and fsyncs it, pushing pending directory-entry
// updates (renames, creates) to stable storage.
func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the sync failure is the error that matters
		return err
	}
	return d.Close()
}

// ReadDir lists entry names through os.ReadDir.
func (OS) ReadDir(name string) ([]string, error) {
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

// ---------------------------------------------------------------------------
// Shared helpers

// WriteDurable writes data to path atomically and durably through fs: temp
// file in the same directory, fsync, atomic rename over path, parent
// directory fsync. A crash at any instruction leaves either the old file or
// the new one, never a torn mix.
func WriteDurable(fsys FS, path string, write func(File) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write failure is the error that matters
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// ---------------------------------------------------------------------------
// In-memory crash-injecting filesystem

// memNode is the content of one file: the live bytes every handle sees and
// the synced bytes that survive a crash. Nodes are shared between the live
// and durable namespaces (a rename moves the binding, not the content).
type memNode struct {
	data   []byte
	synced []byte
}

// Mem is an in-memory FS with crash injection. The zero value is usable and
// empty.
//
// Crash model: SetCrashAt(n) arms the injector so that the n-th mutating
// operation (1-based, counted by MutationCount) fails with ErrCrashed and
// kills the filesystem — every subsequent operation also fails. A killed
// write first applies a deterministic prefix of its buffer (torn write).
// Recover then applies power-cut semantics: the durable namespace replaces
// the live one and every file's content reverts to its last-synced bytes,
// optionally keeping a prefix of an un-fsynced append (torn tail) when
// KeepUnsyncedTail is set.
type Mem struct {
	mu      sync.Mutex
	live    map[string]*memNode
	durable map[string]*memNode
	dirs    map[string]bool
	// pendingSync records namespace bindings changed since the last SyncDir
	// of their parent: path -> parent dir.
	pendingSync map[string]string

	muts    int
	crashAt int
	crashed bool
	opLog   []string

	// KeepUnsyncedTail makes Recover retain a pseudo-random prefix of data
	// appended (but not fsynced) before the crash, modeling a partial page
	// flush — the case WAL torn-tail truncation exists for. Without it,
	// un-fsynced data is dropped entirely (the conservative model).
	KeepUnsyncedTail bool
	// tornSeed drives the deterministic torn-write/torn-tail prefix lengths.
	tornSeed uint64
}

// NewMem returns an empty in-memory filesystem with injection disarmed.
func NewMem() *Mem {
	return &Mem{
		live:        make(map[string]*memNode),
		durable:     make(map[string]*memNode),
		dirs:        map[string]bool{".": true, "/": true},
		pendingSync: make(map[string]string),
		tornSeed:    0x9e3779b97f4a7c15,
	}
}

// SetCrashAt arms the injector: the n-th subsequent mutating operation
// crashes the filesystem. n <= 0 disarms.
func (m *Mem) SetCrashAt(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.muts = 0
	m.crashAt = n
}

// MutationCount returns how many mutating operations have run since the last
// SetCrashAt (or creation). Run a scenario once with injection disarmed to
// learn the crashpoint count, then sweep SetCrashAt(1..count).
func (m *Mem) MutationCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.muts
}

// Crashed reports whether the simulated crash has fired.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// OpLog returns the labels of the mutating operations performed since the
// last SetCrashAt — the crashpoint catalog of a scenario.
func (m *Mem) OpLog() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.opLog...)
}

// Recover applies power-cut semantics and revives the filesystem: the
// durable namespace becomes the live one and file contents revert to their
// last-synced bytes (plus, with KeepUnsyncedTail, a deterministic prefix of
// any un-fsynced append). Injection is disarmed; arm it again with
// SetCrashAt for nested crash tests.
func (m *Mem) Recover() {
	m.mu.Lock()
	defer m.mu.Unlock()
	live := make(map[string]*memNode, len(m.durable))
	for path, n := range m.durable {
		keep := n.synced
		if m.KeepUnsyncedTail && len(n.data) > len(n.synced) {
			if prefix := n.data[:len(n.synced)]; bytesEqual(prefix, n.synced) {
				extra := m.tornLen(len(n.data) - len(n.synced))
				keep = append([]byte(nil), n.data[:len(n.synced)+extra]...)
			}
		}
		n.data = append([]byte(nil), keep...)
		n.synced = append([]byte(nil), n.synced...)
		live[path] = n
	}
	m.live = live
	m.pendingSync = make(map[string]string)
	m.crashed = false
	m.crashAt = 0
	m.muts = 0
	m.opLog = nil
}

// tornLen derives a deterministic prefix length in [0, n] from the injector
// seed (xorshift; no global randomness so sweeps reproduce).
func (m *Mem) tornLen(n int) int {
	if n <= 0 {
		return 0
	}
	m.tornSeed ^= m.tornSeed << 13
	m.tornSeed ^= m.tornSeed >> 7
	m.tornSeed ^= m.tornSeed << 17
	return int(m.tornSeed % uint64(n+1))
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// step accounts one mutating operation and fires the armed crash. The caller
// holds m.mu. It returns ErrCrashed when this operation is the crashpoint
// (the caller may still apply a torn prefix) or when the fs is already dead.
func (m *Mem) step(label string) error {
	if m.crashed {
		return ErrCrashed
	}
	m.muts++
	m.opLog = append(m.opLog, label)
	if m.crashAt > 0 && m.muts >= m.crashAt {
		m.crashed = true
		return ErrCrashed
	}
	return nil
}

func clean(p string) string { return filepath.Clean(p) }

// OpenFile opens or creates an in-memory file.
func (m *Mem) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	node, exists := m.live[name]
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	switch {
	case !exists && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case !exists:
		if !m.dirs[filepath.Dir(name)] {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		if err := m.step("create " + name); err != nil {
			return nil, err
		}
		node = &memNode{}
		m.live[name] = node
		m.pendingSync[name] = filepath.Dir(name)
	case flag&os.O_TRUNC != 0:
		if err := m.step("truncate-open " + name); err != nil {
			return nil, err
		}
		node.data = nil
	}
	f := &memFile{fs: m, node: node, name: name, writable: writable}
	if flag&os.O_APPEND != 0 {
		f.appendMode = true
	}
	return f, nil
}

// Rename atomically rebinds oldpath to newpath in the live namespace; the
// binding becomes durable at the next SyncDir of the parent directory.
func (m *Mem) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("rename " + oldpath + " -> " + newpath); err != nil {
		return err
	}
	node, ok := m.live[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	delete(m.live, oldpath)
	m.live[newpath] = node
	m.pendingSync[oldpath] = filepath.Dir(oldpath)
	m.pendingSync[newpath] = filepath.Dir(newpath)
	return nil
}

// Remove unlinks a file from the live namespace.
func (m *Mem) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("remove " + name); err != nil {
		return err
	}
	if _, ok := m.live[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.live, name)
	m.pendingSync[name] = filepath.Dir(name)
	return nil
}

// MkdirAll registers a directory chain. Directories are modeled as durable
// on creation (the recovery protocol re-creates them anyway).
func (m *Mem) MkdirAll(path string, perm os.FileMode) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

// Stat reports a file's current (live) size.
func (m *Mem) Stat(name string) (fs.FileInfo, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if node, ok := m.live[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(node.data))}, nil
	}
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), size: 0, dir: true}, nil
	}
	return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
}

// SyncDir commits the pending namespace changes of a directory's direct
// entries to the durable namespace.
func (m *Mem) SyncDir(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step("syncdir " + name); err != nil {
		return err
	}
	if !m.dirs[name] {
		return &os.PathError{Op: "syncdir", Path: name, Err: os.ErrNotExist}
	}
	for path, parent := range m.pendingSync {
		if parent != name {
			continue
		}
		if node, ok := m.live[path]; ok {
			m.durable[path] = node
		} else {
			delete(m.durable, path)
		}
		delete(m.pendingSync, path)
	}
	return nil
}

// ReadDir lists the live entries directly under a directory.
func (m *Mem) ReadDir(name string) ([]string, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if !m.dirs[name] {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrNotExist}
	}
	var out []string
	for path := range m.live {
		if filepath.Dir(path) == name {
			out = append(out, filepath.Base(path))
		}
	}
	return out, nil
}

// memFile is one handle on a memNode.
type memFile struct {
	fs         *Mem
	node       *memNode
	name       string
	off        int64
	appendMode bool
	writable   bool
	closed     bool
}

// Write appends or overwrites at the handle offset. When this write is the
// armed crashpoint, a deterministic prefix of p lands before the crash — a
// torn write.
func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.writable {
		return 0, &os.PathError{Op: "write", Path: f.name, Err: os.ErrPermission}
	}
	n := len(p)
	if err := f.fs.step(fmt.Sprintf("write %s (%dB)", f.name, n)); err != nil {
		if errors.Is(err, ErrCrashed) && !f.closed {
			n = f.fs.tornLen(len(p))
			f.writeAtLocked(p[:n])
		}
		return 0, err
	}
	f.writeAtLocked(p)
	return n, nil
}

// writeAtLocked applies bytes at the handle position. Caller holds fs.mu.
func (f *memFile) writeAtLocked(p []byte) {
	pos := f.off
	if f.appendMode {
		pos = int64(len(f.node.data))
	}
	end := pos + int64(len(p))
	if int64(len(f.node.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[pos:end], p)
	f.off = end
}

// ReadAt reads from the live content.
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Truncate cuts the live content. Like a real truncate it is volatile until
// the next Sync.
func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.fs.step(fmt.Sprintf("truncate %s to %d", f.name, size)); err != nil {
		return err
	}
	if size < 0 || size > int64(len(f.node.data)) {
		return &os.PathError{Op: "truncate", Path: f.name, Err: os.ErrInvalid}
	}
	f.node.data = f.node.data[:size]
	if f.off > size {
		f.off = size
	}
	return nil
}

// Sync makes the current content durable.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.fs.step("sync " + f.name); err != nil {
		return err
	}
	f.node.synced = append([]byte(nil), f.node.data...)
	return nil
}

// Close releases the handle. Closing a writable handle counts as a
// crashpoint (real close can surface deferred write errors).
func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	if f.writable {
		if err := f.fs.step("close " + f.name); err != nil {
			return err
		}
	}
	return nil
}

// Name returns the path the handle was opened with.
func (f *memFile) Name() string { return f.name }

// memInfo is the fs.FileInfo for Mem files.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }
