package engine

// Sealing converts a table's unsealed row tail into immutable column
// segments (typed vectors + zone maps; see storage.Segment). Tables already
// auto-seal as inserts cross the storage threshold, so these entry points
// exist for bulk loads, benchmarks, and operators that want full columnar
// coverage immediately — e.g. right before a read-heavy reporting phase.
// Sealing changes no schema and no visible data, so it deliberately does
// not bump the catalog version: cached plans stay valid (scans take a fresh
// heap snapshot at Open and pick up new segments automatically).

// SealTable seals the named table's current tail, returning the number of
// segments created.
func (db *DB) SealTable(name string) (int, error) {
	tbl, err := db.catalog.Get(name)
	if err != nil {
		return 0, err
	}
	return tbl.Seal(), nil
}

// SealAll seals every table's current tail, returning the total number of
// segments created.
func (db *DB) SealAll() int {
	total := 0
	for _, name := range db.catalog.Names() {
		tbl, err := db.catalog.Get(name)
		if err != nil {
			continue
		}
		total += tbl.Seal()
	}
	return total
}
