package engine

import (
	"testing"
)

func TestBatchAtomicity(t *testing.T) {
	db := paperDB(t)
	snapBefore := db.Snapshot()

	b := db.BeginBatch()
	if _, err := b.Exec(`INSERT INTO Activity VALUES ('m8', 'idle', '2006-03-16 00:00:00')`); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec(`UPDATE Heartbeat SET recency = '2006-03-16 00:00:00' WHERE sid = 'm1'`); err != nil {
		t.Fatal(err)
	}
	// Nothing visible before commit.
	res, _ := db.QueryAt(`SELECT COUNT(*) FROM Activity WHERE mach_id = 'm8'`, db.Snapshot())
	if res.Rows[0][0].Int() != 0 {
		t.Error("uncommitted batch visible")
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// Both visible after commit; old snapshot sees neither.
	res, _ = db.Query(`SELECT COUNT(*) FROM Activity WHERE mach_id = 'm8'`)
	if res.Rows[0][0].Int() != 1 {
		t.Error("batch insert lost")
	}
	res, _ = db.QueryAt(`SELECT recency FROM Heartbeat WHERE sid = 'm1'`, snapBefore)
	if res.Rows[0][0].String() != "2006-03-15 14:20:05" {
		t.Errorf("old snapshot sees new heartbeat: %v", res.Rows[0][0])
	}
	if b.Affected() != 2 {
		t.Errorf("Affected = %d", b.Affected())
	}
}

func TestBatchAbort(t *testing.T) {
	db := paperDB(t)
	b := db.BeginBatch()
	b.Exec(`INSERT INTO Activity VALUES ('m8', 'idle', '2006-03-16 00:00:00')`)
	if err := b.Abort(); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT COUNT(*) FROM Activity WHERE mach_id = 'm8'`)
	if res.Rows[0][0].Int() != 0 {
		t.Error("aborted batch visible")
	}
	if _, err := b.Exec(`DELETE FROM Activity`); err == nil {
		t.Error("exec after abort should fail")
	}
	if err := b.Commit(); err == nil {
		t.Error("commit after abort should fail")
	}
}

func TestBatchReadsOwnWrites(t *testing.T) {
	db := paperDB(t)
	b := db.BeginBatch()
	if _, err := b.Exec(`INSERT INTO Heartbeat VALUES ('mX', '2006-03-16 00:00:00')`); err != nil {
		t.Fatal(err)
	}
	// An UPDATE inside the batch must see the batch's own insert.
	n, err := b.Exec(`UPDATE Heartbeat SET recency = '2006-03-16 01:00:00' WHERE sid = 'mX'`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("update matched %d rows, want 1 (own write invisible)", n)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT recency FROM Heartbeat WHERE sid = 'mX'`)
	if res.Rows[0][0].String() != "2006-03-16 01:00:00" {
		t.Errorf("final recency = %v", res.Rows[0][0])
	}
}

func TestBatchRejectsDDL(t *testing.T) {
	db := paperDB(t)
	b := db.BeginBatch()
	defer b.Abort()
	if _, err := b.Exec(`CREATE TABLE t (x TEXT)`); err == nil {
		t.Error("DDL in batch should fail")
	}
	if _, err := b.Exec(`SELECT * FROM Activity`); err == nil {
		t.Error("SELECT in batch should fail")
	}
}
