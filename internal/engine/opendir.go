package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"trac/internal/crashfs"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/types"
)

// Directory-backed durability. A database directory holds one *epoch* of
// state — a checkpoint dump, the segment files it references, and the WAL
// carrying everything committed since — plus a tiny MANIFEST naming the
// current epoch:
//
//	dir/
//	  MANIFEST           "TRACMF01" + uvarint epoch + CRC32C   (atomic cursor)
//	  dump.<epoch>       "TRACDB02" catalog dump (schemas, spill refs, row tails)
//	  wal.<epoch>.log    "TRACWAL2" log of post-checkpoint commits
//	  seg/<table>.<epoch>.seg   "TRACSEG1" spilled columnar segments
//
// CheckpointDir writes the NEXT epoch completely (segment files, a fresh
// empty WAL, the dump — each placed with temp file + fsync + rename +
// parent-dir fsync) and only then rewrites MANIFEST, which is the single
// atomic commit point: a crash anywhere before it recovers the old epoch
// untouched; a crash anywhere after it recovers the new one. The old
// epoch's files are deleted only after the manifest is durable, so unlike
// the legacy truncate-in-place Checkpoint there is no window where the new
// dump coexists with the old log.
//
// OpenDir is the inverse: read MANIFEST, load the epoch's dump (schemas +
// tails eagerly, spilled segments lazily via ReadAt — recovery cost is
// O(catalog + WAL tail), not O(data)), replay the epoch's WAL, and sweep
// crash debris from dead epochs. Sniffer offsets ride along for free: the
// SnifferState table is ordinary data in the dump/WAL, so ingestion resumes
// exactly where the consistent cut left it.
const (
	manifestName  = "MANIFEST"
	manifestMagic = "TRACMF01"
	dumpMagicV2   = "TRACDB02"
	segDirName    = "seg"
)

// ckptSpillRows is the whole-segment unit CheckpointDir spills to segment
// files; the sub-unit remainder stays in the dump as a row tail. A var, not
// a const, so crash tests can shrink it and exercise the spill path without
// multi-thousand-row workloads.
var ckptSpillRows = storage.DefaultSegmentSize

// openConfig collects OpenDir options.
type openConfig struct {
	fs      crashfs.FS
	verify  bool
	syncWAL bool
}

// OpenOption configures OpenDir.
type OpenOption func(*openConfig)

// WithFS routes all durability I/O through fsys (crash-injection tests).
func WithFS(fsys crashfs.FS) OpenOption {
	return func(c *openConfig) { c.fs = fsys }
}

// WithVerify makes OpenDir eagerly hydrate every spilled segment file,
// verifying all block checksums up front and returning an error instead of
// deferring detection to first access. Recovery becomes O(data).
func WithVerify() OpenOption {
	return func(c *openConfig) { c.verify = true }
}

// WithSyncWAL enables fsync-per-commit (group-committed) on the WAL.
func WithSyncWAL() OpenOption {
	return func(c *openConfig) { c.syncWAL = true }
}

// OpenDir opens (or initializes) a durable database directory and recovers
// its state: catalog dump, lazily-loaded segment files, WAL tail replay,
// and stale-epoch cleanup. The returned DB logs every committed mutation to
// the epoch's WAL; call CheckpointDir periodically to bound the log, and
// Close when done.
func OpenDir(dir string, opts ...OpenOption) (*DB, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	db := New()
	db.fsys = cfg.fs
	fsys := db.fsRef()
	if err := fsys.MkdirAll(filepath.Join(dir, segDirName), 0o755); err != nil {
		return nil, err
	}

	epoch, found, err := readManifest(fsys, filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	if !found {
		epoch = 1 // fresh directory: epoch 1 starts empty, WAL-only
	}
	db.dir = dir
	db.epoch = epoch
	if found {
		if err := db.loadDirDump(fsys, dir, epoch); err != nil {
			return nil, err
		}
	}
	// Bootstrap commit: guarantees the commit horizon is ≥ 1, so rows
	// hydrated from segment files (stamped XminSeq 1) are visible to every
	// snapshot even before the first real commit.
	if err := db.mgr.Begin().Commit(); err != nil {
		return nil, err
	}
	if cfg.verify {
		for _, name := range db.catalog.Names() {
			tbl, err := db.catalog.Get(name)
			if err != nil {
				return nil, err
			}
			if err := tbl.Hydrate(); err != nil {
				return nil, fmt.Errorf("engine: verifying table %s: %w", name, err)
			}
		}
	}
	cleanupStaleEpochs(fsys, dir, epoch)
	if err := db.AttachWAL(filepath.Join(dir, walFileName(epoch))); err != nil {
		return nil, err
	}
	// Make the WAL's directory entry durable: fsyncing file contents later
	// is worthless if the name itself evaporates with the page cache.
	if err := fsys.SyncDir(dir); err != nil {
		_ = db.DetachWAL() // the sync failure is the error that matters
		return nil, err
	}
	if cfg.syncWAL {
		db.walMu.Lock()
		db.wal.Sync = true
		db.walMu.Unlock()
	}
	return db, nil
}

// Close detaches the WAL (flush + fsync + close), reporting any error.
func (db *DB) Close() error { return db.DetachWAL() }

// Epoch returns the current checkpoint epoch (0 when not opened via
// OpenDir).
func (db *DB) Epoch() uint64 { return db.epoch }

// Dir returns the durable directory (empty when not opened via OpenDir).
func (db *DB) Dir() string { return db.dir }

// CheckpointDir writes the next epoch — per-table segment files for the
// sealed bulk, a dump for schemas and row tails, a fresh WAL — and commits
// it atomically by rewriting MANIFEST. See the package comment above for
// the crash-ordering argument.
func (db *DB) CheckpointDir() error {
	if db.dir == "" {
		return errors.New("engine: database was not opened with OpenDir")
	}
	db.walMu.Lock()
	w := db.wal
	db.walMu.Unlock()
	if w == nil {
		return errors.New("engine: no WAL attached")
	}
	// Exclude in-flight commit+log pairs for the whole checkpoint (see
	// DB.ckptMu): every commit is either fully before the snapshot (in the
	// dump) or fully after the WAL swap (in the new log), never split.
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if err := w.poisonErr(); err != nil {
		return err
	}
	fsys := db.fsRef()
	newEpoch := db.epoch + 1
	snap := db.Snapshot()

	// Phase 1: spill each table's sealed bulk to its new segment file.
	type tableCkpt struct {
		tbl       *storage.Table
		spillFile string
		spilled   int
		tail      []*storage.Row
	}
	names := db.catalog.Names()
	sort.Strings(names)
	ckpts := make([]tableCkpt, 0, len(names))
	for _, name := range names {
		tbl, err := db.catalog.Get(name)
		if err != nil {
			return err
		}
		var live []*storage.Row
		for _, r := range tbl.Rows() {
			if snap.Visible(r) {
				live = append(live, r)
			}
		}
		ck := tableCkpt{tbl: tbl, tail: live}
		if spill := len(live) - len(live)%ckptSpillRows; spill > 0 {
			segs := storage.CompactSegments(live[:spill], tbl.Schema, ckptSpillRows)
			ck.spillFile = segFileName(tbl.Name, newEpoch)
			ck.spilled = spill
			ck.tail = live[spill:]
			path := filepath.Join(db.dir, segDirName, ck.spillFile)
			err := crashfs.WriteDurable(fsys, path, func(f crashfs.File) error {
				return storage.WriteSegmentFile(f, tbl.Schema, segs)
			})
			if err != nil {
				return err
			}
		}
		ckpts = append(ckpts, ck)
	}

	// Phase 2: a fresh, empty, durable WAL for the new epoch.
	newWALPath := filepath.Join(db.dir, walFileName(newEpoch))
	neww, replayed, err := openWAL(fsys, newWALPath)
	if err != nil {
		return err
	}
	if len(replayed) != 0 {
		_ = neww.Close() // the stale-file error is the error that matters
		return fmt.Errorf("engine: new epoch WAL %s already has transactions", newWALPath)
	}
	if err := neww.f.Sync(); err != nil {
		_ = neww.Close()
		return err
	}
	if err := fsys.SyncDir(db.dir); err != nil {
		_ = neww.Close()
		return err
	}

	// Phase 3: the dump referencing the new segment files.
	err = crashfs.WriteDurable(fsys, filepath.Join(db.dir, dumpFileName(newEpoch)), func(f crashfs.File) error {
		cw := &crcWriter{w: f}
		bw := bufio.NewWriter(cw)
		if _, err := bw.WriteString(dumpMagicV2); err != nil {
			return err
		}
		writeUvarint(bw, newEpoch)
		writeUvarint(bw, uint64(len(ckpts)))
		for _, ck := range ckpts {
			if err := saveDirTable(bw, ck.tbl, ck.spillFile, ck.spilled, ck.tail); err != nil {
				return fmt.Errorf("engine: saving table %s: %w", ck.tbl.Name, err)
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], cw.sum)
		_, err := f.Write(sum[:])
		return err
	})
	if err != nil {
		_ = neww.Close()
		return err
	}

	// Phase 4: the commit point — everything before this is invisible to
	// recovery, everything after is cleanup.
	if err := writeManifest(fsys, filepath.Join(db.dir, manifestName), newEpoch); err != nil {
		_ = neww.Close()
		return err
	}

	// Phase 5: swap the live WAL to the new epoch and sweep the old one.
	db.walMu.Lock()
	old := db.wal
	neww.Sync = old.Sync
	db.wal = neww
	db.walMu.Unlock()
	db.epoch = newEpoch
	// The old log is fully subsumed by the new dump; its close result
	// cannot change recovery.
	_ = old.Close()
	cleanupStaleEpochs(fsys, db.dir, newEpoch)
	return nil
}

// ---------------------------------------------------------------------------
// manifest

func readManifest(fsys crashfs.FS, path string) (epoch uint64, found bool, err error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	defer f.Close()
	info, err := fsys.Stat(path)
	if err != nil {
		return 0, false, err
	}
	if info.Size() < int64(len(manifestMagic))+1+4 || info.Size() > 64 {
		return 0, false, fmt.Errorf("engine: manifest %s has impossible size %d", path, info.Size())
	}
	buf := make([]byte, info.Size())
	if _, err := f.ReadAt(buf, 0); err != nil {
		return 0, false, err
	}
	body, sumBytes := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(sumBytes) {
		return 0, false, fmt.Errorf("engine: manifest %s checksum mismatch", path)
	}
	if string(body[:len(manifestMagic)]) != manifestMagic {
		return 0, false, fmt.Errorf("engine: manifest %s bad magic %q", path, body[:len(manifestMagic)])
	}
	epoch, n := binary.Uvarint(body[len(manifestMagic):])
	if n <= 0 || epoch == 0 {
		return 0, false, fmt.Errorf("engine: manifest %s corrupt epoch", path)
	}
	return epoch, true, nil
}

func writeManifest(fsys crashfs.FS, path string, epoch uint64) error {
	body := append([]byte(manifestMagic), binary.AppendUvarint(nil, epoch)...)
	body = binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))
	return crashfs.WriteDurable(fsys, path, func(f crashfs.File) error {
		_, err := f.Write(body)
		return err
	})
}

// ---------------------------------------------------------------------------
// epoch file naming

func dumpFileName(epoch uint64) string { return fmt.Sprintf("dump.%d", epoch) }
func walFileName(epoch uint64) string  { return fmt.Sprintf("wal.%d.log", epoch) }

func segFileName(table string, epoch uint64) string {
	return fmt.Sprintf("%s.%d.seg", strings.ToLower(table), epoch)
}

// cleanupStaleEpochs removes crash debris: temp files and dump/WAL/segment
// files belonging to any epoch other than the live one. Best-effort — a
// failure here only delays reclamation until the next open or checkpoint.
func cleanupStaleEpochs(fsys crashfs.FS, dir string, epoch uint64) {
	sweep := func(sub string, stale func(name string) bool) {
		names, err := fsys.ReadDir(sub)
		if err != nil {
			return
		}
		removed := false
		for _, name := range names {
			if strings.HasSuffix(name, ".tmp") || stale(name) {
				_ = fsys.Remove(filepath.Join(sub, name))
				removed = true
			}
		}
		if removed {
			_ = fsys.SyncDir(sub)
		}
	}
	sweep(dir, func(name string) bool {
		if e, ok := parseEpochName(name, "dump.", ""); ok {
			return e != epoch
		}
		if e, ok := parseEpochName(name, "wal.", ".log"); ok {
			return e != epoch
		}
		return false
	})
	sweep(filepath.Join(dir, segDirName), func(name string) bool {
		i := strings.LastIndex(strings.TrimSuffix(name, ".seg"), ".")
		if !strings.HasSuffix(name, ".seg") || i < 0 {
			return false
		}
		e, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg")[i+1:], 10, 64)
		return err == nil && e != epoch
	})
}

// parseEpochName extracts N from prefix+N+suffix, e.g. "wal.3.log".
func parseEpochName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	e, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// ---------------------------------------------------------------------------
// TRACDB02 dump codec

// crcWriter tracks the running CRC32C of everything written through it.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, castagnoli, p[:n])
	return n, err
}

// saveDirTable writes one table's schema, index list, spill reference, and
// row tail (the visible rows NOT covered by the segment file).
func saveDirTable(w *bufio.Writer, tbl *storage.Table, spillFile string, spilled int, tail []*storage.Row) error {
	writeString(w, tbl.Name)
	schema := tbl.Schema
	writeUvarint(w, uint64(schema.NumColumns()))
	for _, col := range schema.Columns {
		writeString(w, col.Name)
		w.WriteByte(byte(col.Kind))
		if col.PrimaryKey {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
		writeDomain(w, col.Domain)
	}
	writeVarint(w, int64(schema.SourceColumn))
	checks := TableChecks(tbl)
	writeUvarint(w, uint64(len(checks)))
	for _, c := range checks {
		writeString(w, c.SQL())
	}
	idxCols := tbl.IndexedColumns()
	sort.Ints(idxCols)
	writeUvarint(w, uint64(len(idxCols)))
	for _, c := range idxCols {
		writeUvarint(w, uint64(c))
	}
	writeString(w, spillFile)
	writeUvarint(w, uint64(spilled))
	writeUvarint(w, uint64(len(tail)))
	for _, r := range tail {
		for _, v := range r.Values {
			if err := writeValue(w, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadDirDump reads dump.<epoch>, restoring schemas and row tails eagerly
// and registering spilled segment files for lazy hydration.
func (db *DB) loadDirDump(fsys crashfs.FS, dir string, epoch uint64) error {
	path := filepath.Join(dir, dumpFileName(epoch))
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := fsys.Stat(path)
	if err != nil {
		return err
	}
	if info.Size() < int64(len(dumpMagicV2))+4 {
		return fmt.Errorf("engine: dump %s too short (%d bytes)", path, info.Size())
	}
	buf := make([]byte, info.Size())
	if _, err := f.ReadAt(buf, 0); err != nil {
		return err
	}
	body, sumBytes := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(sumBytes) {
		return fmt.Errorf("engine: dump %s checksum mismatch", path)
	}
	r := bufio.NewReader(bytes.NewReader(body))
	magic := make([]byte, len(dumpMagicV2))
	if _, err := io.ReadFull(r, magic); err != nil {
		return err
	}
	if string(magic) != dumpMagicV2 {
		return fmt.Errorf("engine: %s is not a TRAC v2 dump (magic %q)", path, magic)
	}
	dumpEpoch, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	if dumpEpoch != epoch {
		return fmt.Errorf("engine: dump %s claims epoch %d, manifest says %d", path, dumpEpoch, epoch)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := db.loadDirTable(r, fsys, dir); err != nil {
			return err
		}
	}
	// Everything above bypassed Exec; settle the catalog version once so
	// plans cached against the empty pre-load catalog cannot survive.
	db.catalog.BumpVersion()
	return nil
}

// loadDirTable restores one table from the v2 dump.
func (db *DB) loadDirTable(r *bufio.Reader, fsys crashfs.FS, dir string) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	nCols, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	cols := make([]storage.Column, nCols)
	for i := range cols {
		cname, err := readString(r)
		if err != nil {
			return err
		}
		kindB, err := r.ReadByte()
		if err != nil {
			return err
		}
		pkB, err := r.ReadByte()
		if err != nil {
			return err
		}
		dom, err := readDomain(r)
		if err != nil {
			return err
		}
		cols[i] = storage.Column{Name: cname, Kind: types.Kind(kindB), PrimaryKey: pkB == 1, Domain: dom}
	}
	schema, err := storage.NewSchema(cols)
	if err != nil {
		return err
	}
	srcCol, err := readVarint(r)
	if err != nil {
		return err
	}
	if srcCol >= 0 {
		schema.SourceColumn = int(srcCol)
	}
	nChecks, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nChecks; i++ {
		src, err := readString(r)
		if err != nil {
			return err
		}
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			return fmt.Errorf("engine: bad CHECK in dump: %w", err)
		}
		schema.Checks = append(schema.Checks, e)
	}
	tbl := storage.NewTable(name, schema)
	if err := db.catalog.Create(tbl); err != nil {
		return err
	}

	nIdx, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	idxCols := make([]int, nIdx)
	for i := range idxCols {
		c, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		if c >= nCols {
			return fmt.Errorf("engine: dump index column %d out of range", c)
		}
		idxCols[i] = int(c)
	}
	spillFile, err := readString(r)
	if err != nil {
		return err
	}
	spilled, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}

	nRows, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	tx := db.mgr.Begin()
	for i := uint64(0); i < nRows; i++ {
		vals := make([]types.Value, nCols)
		for j := range vals {
			v, err := readValue(r)
			if err != nil {
				tx.Abort()
				return err
			}
			vals[j] = v
		}
		if err := tx.InsertRow(tbl, storage.NewRow(vals, 0)); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	if spillFile != "" {
		segPath := filepath.Join(dir, segDirName, spillFile)
		want := int(spilled)
		// Indexes wait for hydration; building them now would force the
		// load this laziness exists to avoid.
		tbl.SetSpill(func() ([]*storage.Segment, error) {
			return loadSegmentFile(fsys, segPath, schema, want)
		}, idxCols)
		return nil
	}
	for _, c := range idxCols {
		if err := tbl.CreateIndex(schema.Columns[c].Name); err != nil {
			return err
		}
	}
	return nil
}

// loadSegmentFile reads and checksums one table's spilled segments.
func loadSegmentFile(fsys crashfs.FS, path string, schema *storage.Schema, wantRows int) ([]*storage.Segment, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := fsys.Stat(path)
	if err != nil {
		return nil, err
	}
	segs, err := storage.ReadSegmentFile(f, info.Size(), schema)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range segs {
		total += s.Len()
	}
	if total != wantRows {
		return nil, fmt.Errorf("engine: segment file %s holds %d rows, dump expects %d", path, total, wantRows)
	}
	return segs, nil
}
