package engine

import (
	"fmt"
	"testing"

	"trac/internal/crashfs"
)

// The crash sweep kills the database at EVERY mutating filesystem operation
// of a canonical workload (inserts, index builds, two full checkpoint
// cycles, close) and proves recovery always lands on a consistent cut of
// the acknowledged commits:
//
//   - zero lost: every insert whose Exec returned success is recovered
//     (fsync-per-commit means an ack is a durability promise);
//   - zero duplicated / zero torn: the recovered values are exactly
//     0..M-1, each once, for a single M;
//   - at-most-one in-flight: M never exceeds acked+1 (the commit racing
//     the crash may land, but nothing beyond it can).
//
// Each crashpoint then proves the recovered database is fully usable: the
// workload is finished from the recovered state, checkpointed, and
// re-opened once more.
const crashInserts = 18

// runCrashWorkload drives the workload until completion or the injected
// crash, returning how many inserts were acknowledged.
func runCrashWorkload(m *crashfs.Mem) (acked int) {
	db, err := OpenDir("db", WithFS(m), WithSyncWAL())
	if err != nil {
		return 0
	}
	if _, err := db.Exec(`CREATE TABLE T (a BIGINT, src TEXT)`); err != nil {
		return 0
	}
	if _, err := db.Exec(`CREATE INDEX it ON T (a)`); err != nil {
		return 0
	}
	for i := 0; i < crashInserts; i++ {
		if i == 6 || i == 12 {
			if err := db.CheckpointDir(); err != nil {
				return acked
			}
		}
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d, 's%d')`, i, i%4)); err != nil {
			return acked
		}
		acked++
	}
	_ = db.Close() // the sweep's final crashpoints live in Close itself
	return acked
}

// verifyRecovered opens the crashed directory, checks the consistent-cut
// invariant against acked, then finishes and re-verifies the workload.
func verifyRecovered(t *testing.T, m *crashfs.Mem, acked, crashAt int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("crashpoint %d: %s", crashAt, fmt.Sprintf(format, args...))
	}
	db, err := OpenDir("db", WithFS(m), WithSyncWAL())
	if err != nil {
		fail("recovery failed: %v", err)
	}
	recovered := 0
	if _, err := db.Catalog().Get("T"); err != nil {
		// The crash beat the CREATE TABLE commit; nothing was acked.
		if acked != 0 {
			fail("table lost but %d inserts were acked", acked)
		}
		db.MustExec(`CREATE TABLE T (a BIGINT, src TEXT)`)
		db.MustExec(`CREATE INDEX it ON T (a)`)
	} else {
		res, err := db.Query(`SELECT a FROM T ORDER BY a`)
		if err != nil {
			fail("query after recovery: %v", err)
		}
		recovered = len(res.Rows)
		if recovered < acked {
			fail("lost commits: %d acked, %d recovered", acked, recovered)
		}
		if recovered > acked+1 {
			fail("phantom commits: %d acked, %d recovered", acked, recovered)
		}
		for i, row := range res.Rows {
			if row[0].Int() != int64(i) {
				fail("recovered cut is not a prefix: slot %d holds %v", i, row[0])
			}
		}
	}
	// The recovered state must be a working database: finish the workload,
	// checkpoint it, and survive one more reopen.
	for i := recovered; i < crashInserts; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T VALUES (%d, 's%d')`, i, i%4))
	}
	if err := db.CheckpointDir(); err != nil {
		fail("checkpoint after recovery: %v", err)
	}
	if err := db.Close(); err != nil {
		fail("close after recovery: %v", err)
	}
	db2, err := OpenDir("db", WithFS(m))
	if err != nil {
		fail("second recovery: %v", err)
	}
	res, err := db2.Query(`SELECT a FROM T ORDER BY a`)
	if err != nil {
		fail("query after second recovery: %v", err)
	}
	if len(res.Rows) != crashInserts {
		fail("finished workload has %d rows, want %d", len(res.Rows), crashInserts)
	}
	for i, row := range res.Rows {
		if row[0].Int() != int64(i) {
			fail("final state slot %d holds %v", i, row[0])
		}
	}
	if err := db2.Close(); err != nil {
		fail("final close: %v", err)
	}
}

func TestCrashRecoverySweep(t *testing.T) {
	defer func(old int) { ckptSpillRows = old }(ckptSpillRows)
	ckptSpillRows = 4 // shrink the spill unit so checkpoints write segment files

	for _, keepTail := range []bool{false, true} {
		name := "fsync-strict"
		if keepTail {
			name = "keep-unsynced-tail"
		}
		t.Run(name, func(t *testing.T) {
			crashpoints := 0
			for crashAt := 1; ; crashAt++ {
				m := crashfs.NewMem()
				m.KeepUnsyncedTail = keepTail
				m.SetCrashAt(crashAt)
				acked := runCrashWorkload(m)
				crashed := m.Crashed()
				m.Recover()
				verifyRecovered(t, m, acked, crashAt)
				if !crashed {
					t.Logf("swept %d crashpoints", crashpoints)
					return
				}
				crashpoints++
				if crashpoints > 100000 {
					t.Fatal("crashpoint sweep did not terminate")
				}
			}
		})
	}
}
