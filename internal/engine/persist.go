package engine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"trac/internal/crashfs"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/types"
)

// The dump format is a versioned custom binary encoding:
//
//	magic "TRACDB01"
//	uvarint tableCount
//	per table:
//	  string name
//	  uvarint columnCount
//	  per column: string name, byte kind, byte pkFlag, domain
//	  varint sourceColumn (-1 when none)
//	  uvarint checkCount, per check: string (SQL text)
//	  uvarint indexedColumnCount, per index: uvarint column position
//	  uvarint rowCount, per row: one value per column
//
// Only versions visible at the save snapshot are written: a dump compacts
// away MVCC history, which is also the natural vacuum for this engine.

const dumpMagic = "TRACDB01"

// Save writes a snapshot-consistent dump of every table to w.
func (db *DB) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(dumpMagic); err != nil {
		return err
	}
	snap := db.Snapshot()
	names := db.catalog.Names()
	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		tbl, err := db.catalog.Get(name)
		if err != nil {
			return err
		}
		if err := saveTable(bw, tbl, snap); err != nil {
			return fmt.Errorf("engine: saving table %s: %w", name, err)
		}
	}
	return bw.Flush()
}

// SaveFile writes a dump to a file atomically and durably: temp file in the
// same directory, fsync, rename over path, parent-directory fsync. A crash
// at any point leaves either the complete old dump or the complete new one
// — never a torn file, and never a rename that evaporates with the page
// cache.
func (db *DB) SaveFile(path string) error {
	return crashfs.WriteDurable(db.fsRef(), path, func(f crashfs.File) error {
		return db.Save(f)
	})
}

// Load reads a dump into a fresh database.
func Load(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(dumpMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != dumpMagic {
		return nil, fmt.Errorf("engine: not a TRAC dump (magic %q)", magic)
	}
	db := New()
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		if err := loadTable(br, db); err != nil {
			return nil, err
		}
	}
	// The tables, indexes, and schema metadata restored above all bypass
	// Exec, so settle the catalog version once here: recency plans cached
	// against the empty pre-load catalog must not survive the load.
	db.catalog.BumpVersion()
	return db, nil
}

// LoadFile reads a dump from a file.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func saveTable(w *bufio.Writer, tbl *storage.Table, snap interface{ Visible(*storage.Row) bool }) error {
	writeString(w, tbl.Name)
	schema := tbl.Schema
	writeUvarint(w, uint64(schema.NumColumns()))
	for _, col := range schema.Columns {
		writeString(w, col.Name)
		w.WriteByte(byte(col.Kind))
		if col.PrimaryKey {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
		writeDomain(w, col.Domain)
	}
	writeVarint(w, int64(schema.SourceColumn))
	checks := TableChecks(tbl)
	writeUvarint(w, uint64(len(checks)))
	for _, c := range checks {
		writeString(w, c.SQL())
	}
	idxCols := tbl.IndexedColumns()
	writeUvarint(w, uint64(len(idxCols)))
	for _, c := range idxCols {
		writeUvarint(w, uint64(c))
	}
	// Count visible rows first (two passes keep the format simple).
	rows := tbl.Rows()
	count := 0
	for _, r := range rows {
		if snap.Visible(r) {
			count++
		}
	}
	writeUvarint(w, uint64(count))
	for _, r := range rows {
		if !snap.Visible(r) {
			continue
		}
		for _, v := range r.Values {
			if err := writeValue(w, v); err != nil {
				return err
			}
		}
	}
	return nil
}

func loadTable(r *bufio.Reader, db *DB) error {
	name, err := readString(r)
	if err != nil {
		return err
	}
	nCols, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	cols := make([]storage.Column, nCols)
	for i := range cols {
		cname, err := readString(r)
		if err != nil {
			return err
		}
		kindB, err := r.ReadByte()
		if err != nil {
			return err
		}
		pkB, err := r.ReadByte()
		if err != nil {
			return err
		}
		dom, err := readDomain(r)
		if err != nil {
			return err
		}
		cols[i] = storage.Column{Name: cname, Kind: types.Kind(kindB), PrimaryKey: pkB == 1, Domain: dom}
	}
	schema, err := storage.NewSchema(cols)
	if err != nil {
		return err
	}
	srcCol, err := readVarint(r)
	if err != nil {
		return err
	}
	if srcCol >= 0 {
		schema.SourceColumn = int(srcCol)
	}
	nChecks, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nChecks; i++ {
		src, err := readString(r)
		if err != nil {
			return err
		}
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			return fmt.Errorf("engine: bad CHECK in dump: %w", err)
		}
		schema.Checks = append(schema.Checks, e)
	}
	tbl := storage.NewTable(name, schema)
	if err := db.catalog.Create(tbl); err != nil {
		return err
	}

	nIdx, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	idxCols := make([]int, nIdx)
	for i := range idxCols {
		c, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		idxCols[i] = int(c)
	}

	nRows, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	tx := db.mgr.Begin()
	for i := uint64(0); i < nRows; i++ {
		vals := make([]types.Value, nCols)
		for j := range vals {
			v, err := readValue(r)
			if err != nil {
				tx.Abort()
				return err
			}
			vals[j] = v
		}
		if err := tx.InsertRow(tbl, storage.NewRow(vals, 0)); err != nil {
			tx.Abort()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	// Indexes are rebuilt after loading (backfill is cheaper than
	// per-insert maintenance).
	for _, c := range idxCols {
		if c < 0 || c >= int(nCols) {
			return fmt.Errorf("engine: dump index column %d out of range", c)
		}
		if err := tbl.CreateIndex(schema.Columns[c].Name); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// primitive encoders

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func readVarint(r *bufio.Reader) (int64, error) { return binary.ReadVarint(r) }

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("engine: corrupt dump (string length %d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeValue(w *bufio.Writer, v types.Value) error {
	w.WriteByte(byte(v.Kind()))
	switch v.Kind() {
	case types.KindNull:
	case types.KindBool:
		if v.Bool() {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
	case types.KindInt:
		writeVarint(w, v.Int())
	case types.KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		w.Write(buf[:])
	case types.KindString:
		writeString(w, v.Str())
	case types.KindTime:
		writeVarint(w, v.TimeNanos())
	default:
		return fmt.Errorf("engine: cannot persist value kind %v", v.Kind())
	}
	return nil
}

func readValue(r *bufio.Reader) (types.Value, error) {
	kindB, err := r.ReadByte()
	if err != nil {
		return types.Null, err
	}
	switch types.Kind(kindB) {
	case types.KindNull:
		return types.Null, nil
	case types.KindBool:
		b, err := r.ReadByte()
		if err != nil {
			return types.Null, err
		}
		return types.NewBool(b == 1), nil
	case types.KindInt:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return types.Null, err
		}
		return types.NewInt(i), nil
	case types.KindFloat:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return types.Null, err
		}
		return types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case types.KindString:
		s, err := readString(r)
		if err != nil {
			return types.Null, err
		}
		return types.NewString(s), nil
	case types.KindTime:
		ns, err := binary.ReadVarint(r)
		if err != nil {
			return types.Null, err
		}
		return types.NewTimeNanos(ns), nil
	default:
		return types.Null, fmt.Errorf("engine: corrupt dump (value kind %d)", kindB)
	}
}

func writeDomain(w *bufio.Writer, d types.Domain) {
	w.WriteByte(byte(d.Kind))
	w.WriteByte(byte(d.ValueKind))
	switch d.Kind {
	case types.DomainFinite:
		writeUvarint(w, uint64(len(d.Values)))
		for _, v := range d.Values {
			writeValue(w, v)
		}
	case types.DomainIntRange:
		writeVarint(w, d.MinInt)
		writeVarint(w, d.MaxInt)
	}
}

func readDomain(r *bufio.Reader) (types.Domain, error) {
	kindB, err := r.ReadByte()
	if err != nil {
		return types.Domain{}, err
	}
	vkB, err := r.ReadByte()
	if err != nil {
		return types.Domain{}, err
	}
	d := types.Domain{Kind: types.DomainKind(kindB), ValueKind: types.Kind(vkB)}
	switch d.Kind {
	case types.DomainFinite:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return types.Domain{}, err
		}
		vals := make([]types.Value, n)
		for i := range vals {
			vals[i], err = readValue(r)
			if err != nil {
				return types.Domain{}, err
			}
		}
		return types.FiniteDomain(vals...)
	case types.DomainIntRange:
		min, err := binary.ReadVarint(r)
		if err != nil {
			return types.Domain{}, err
		}
		max, err := binary.ReadVarint(r)
		if err != nil {
			return types.Domain{}, err
		}
		return types.IntRangeDomain(min, max)
	default:
		return d, nil
	}
}
