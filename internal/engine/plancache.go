package engine

import (
	"container/list"
	"strings"
	"sync"
)

// DefaultPlanCacheSize bounds the per-database plan cache. Monitoring
// workloads (the paper's grid consumers, R-GMA-style continuous queries)
// repeat a small set of query texts, so a few hundred entries cover the
// steady state.
const DefaultPlanCacheSize = 256

// PlanCache is a small LRU of prepared objects keyed by an opaque string
// (callers bake in the normalized SQL plus whatever configuration shapes the
// prepared value) tagged with the catalog schema version at insert time.
// A lookup under a different catalog version misses and evicts the stale
// entry, so DDL/CHECK changes invalidate every cached plan without any
// dependency tracking. Safe for concurrent use.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	entries  map[string]*list.Element
	hits     uint64
	misses   uint64
}

// planEntry is one cached value.
type planEntry struct {
	key     string
	version uint64
	value   any
}

// NewPlanCache returns an empty cache holding up to capacity entries
// (<= 0 selects DefaultPlanCacheSize).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached value for key if present AND inserted under the
// same catalog version; a version mismatch evicts the stale entry and
// reports a miss.
func (c *PlanCache) Get(key string, version uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*planEntry)
	if ent.version != version {
		c.ll.Remove(el)
		delete(c.entries, key)
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.value, true
}

// Put inserts (or replaces) a value under the given catalog version,
// evicting the least recently used entry when full.
func (c *PlanCache) Put(key string, version uint64, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*planEntry)
		ent.version = version
		ent.value = value
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&planEntry{key: key, version: version, value: value})
	c.entries[key] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
	}
}

// Len returns the number of live entries.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counts.
func (c *PlanCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// NormalizeSQL collapses whitespace runs to single spaces and trims the
// ends, so cosmetically different renderings of the same query share one
// cache entry. Single-quoted string literals (with '' escapes) are copied
// verbatim: collapsing inside them would merge queries that differ only in
// literal whitespace — a wrong-answer bug, not just a missed hit. Case is
// left alone for the same reason.
func NormalizeSQL(sql string) string {
	var sb strings.Builder
	sb.Grow(len(sql))
	inSpace := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		switch {
		case c == '\'':
			if inSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			inSpace = false
			// Copy the quoted literal verbatim, honoring '' escapes.
			j := i + 1
			for j < len(sql) {
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' {
						j += 2
						continue
					}
					break
				}
				j++
			}
			if j < len(sql) {
				j++ // include the closing quote
			}
			sb.WriteString(sql[i:j])
			i = j - 1
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			inSpace = true
		default:
			if inSpace && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			inSpace = false
			sb.WriteByte(c)
		}
	}
	return sb.String()
}
