package engine

import (
	"errors"
	"fmt"

	"trac/internal/sqlparser"
	"trac/internal/txn"
)

// ErrWALAppend marks a commit whose transaction landed but whose WAL append
// failed afterwards: the writes ARE visible to subsequent snapshots, only
// their durability record is missing. Callers that retry on commit failure
// must check for this with errors.Is to avoid double-applying.
var ErrWALAppend = errors.New("engine: WAL append failed after commit")

// Batch groups DML statements into one transaction, so a loader can apply a
// set of events together with the matching Heartbeat update atomically: a
// query snapshot then either sees all of a batch (events AND the advanced
// recency) or none of it. This is the loader-side half of the paper's
// consistency requirement — the query-side half is the shared snapshot used
// by the reporter.
type Batch struct {
	db    *DB
	tx    *txn.Txn
	done  bool
	n     int
	stmts []string // executed statement texts, for the WAL
}

// BeginBatch starts a batch transaction.
func (db *DB) BeginBatch() *Batch {
	return &Batch{db: db, tx: db.mgr.Begin()}
}

// Exec runs one DML statement (INSERT/UPDATE/DELETE) inside the batch. The
// statement sees the batch's own earlier writes.
func (b *Batch) Exec(sql string) (int, error) {
	if b.done {
		return 0, txn.ErrFinished
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, err
	}
	return b.ExecStmt(stmt)
}

// ExecStmt runs an already-parsed DML statement inside the batch.
func (b *Batch) ExecStmt(stmt sqlparser.Statement) (int, error) {
	if b.done {
		return 0, txn.ErrFinished
	}
	var n int
	var err error
	switch s := stmt.(type) {
	case *sqlparser.InsertStmt:
		n, err = b.db.execInsert(s, b.tx)
	case *sqlparser.UpdateStmt:
		n, err = b.db.execUpdate(s, b.tx)
	case *sqlparser.DeleteStmt:
		n, err = b.db.execDelete(s, b.tx)
	default:
		return 0, fmt.Errorf("engine: batch supports only DML, got %T", stmt)
	}
	if err != nil {
		return 0, err
	}
	b.n += n
	b.stmts = append(b.stmts, stmt.SQL())
	return n, nil
}

// Affected returns the total number of rows touched so far.
func (b *Batch) Affected() int { return b.n }

// Commit publishes the whole batch atomically and appends it to the WAL
// (when attached) as one transaction.
func (b *Batch) Commit() error {
	if b.done {
		return txn.ErrFinished
	}
	b.done = true
	// Hold the checkpoint lock shared across the commit+append pair (see
	// DB.ckptMu) so a concurrent checkpoint can't snapshot the commit and
	// then truncate away its log record — or vice versa.
	b.db.ckptMu.RLock()
	defer b.db.ckptMu.RUnlock()
	if err := b.tx.Commit(); err != nil {
		return err
	}
	if err := b.db.logCommitted(b.stmts); err != nil {
		return fmt.Errorf("%w: %v", ErrWALAppend, err)
	}
	return nil
}

// Abort rolls the whole batch back.
func (b *Batch) Abort() error {
	if b.done {
		return txn.ErrFinished
	}
	b.done = true
	return b.tx.Abort()
}
