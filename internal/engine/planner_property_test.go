package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"trac/internal/exec"
	"trac/internal/sqlparser"
	"trac/internal/types"
)

// TestPlannerEquivalenceProperty cross-checks the whole planner/executor
// stack against a reference evaluator (cross product + compiled predicate +
// projection) on randomized schemas, data and queries — including index
// choices, join ordering, the existence reduction, DISTINCT and ORDER BY —
// and verifies that ANALYZE changes plans but never results.
func TestPlannerEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 60; trial++ {
		db := randomDB(t, rng)
		for q := 0; q < 8; q++ {
			sql, sel := randomSelect(t, rng)
			want, refErr := referenceEval(t, db, sel)
			got, gotErr := planAndRun(t, db, sql)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d %q: error mismatch ref=%v got=%v", trial, sql, refErr, gotErr)
			}
			if refErr != nil {
				continue
			}
			if want != got {
				t.Fatalf("trial %d: result mismatch for %q:\nwant %s\ngot  %s", trial, sql, want, got)
			}
			// ANALYZE must be plan-only: identical results afterwards.
			db.MustExec(`ANALYZE`)
			got2, err := planAndRun(t, db, sql)
			if err != nil {
				t.Fatalf("trial %d %q after ANALYZE: %v", trial, sql, err)
			}
			if got2 != got {
				t.Fatalf("trial %d: ANALYZE changed results for %q:\nbefore %s\nafter  %s", trial, sql, got, got2)
			}
		}
	}
}

func randomDB(t *testing.T, rng *rand.Rand) *DB {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE T1 (src TEXT, a BIGINT, b TEXT)`)
	db.MustExec(`CREATE TABLE T2 (src TEXT, c BIGINT, d TEXT)`)
	if rng.Intn(2) == 0 {
		db.MustExec(`CREATE INDEX i1 ON T1 (src)`)
	}
	if rng.Intn(2) == 0 {
		db.MustExec(`CREATE INDEX i2 ON T2 (c)`)
	}
	srcs := []string{"s1", "s2", "s3", "s4"}
	words := []string{"x", "y", "z"}
	n1 := rng.Intn(25)
	for i := 0; i < n1; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T1 VALUES ('%s', %d, '%s')`,
			srcs[rng.Intn(len(srcs))], rng.Intn(20), words[rng.Intn(len(words))]))
	}
	n2 := rng.Intn(15)
	for i := 0; i < n2; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T2 VALUES ('%s', %d, '%s')`,
			srcs[rng.Intn(len(srcs))], rng.Intn(20), words[rng.Intn(len(words))]))
	}
	return db
}

// randomSelect builds a random non-aggregate SELECT and returns its SQL and
// parsed form.
func randomSelect(t *testing.T, rng *rand.Rand) (string, *sqlparser.SelectStmt) {
	t.Helper()
	join := rng.Intn(3) == 0
	var from, items string
	if join {
		from = `T1, T2`
		items = pick(rng, []string{"T1.src, T2.src", "T1.a, T2.c", "T1.src, T2.d, T1.b"})
	} else {
		from = `T1`
		items = pick(rng, []string{"src", "src, a", "a, b", "src, a, b"})
	}
	var preds []string
	addPred := func() {
		options := []string{
			fmt.Sprintf("T1.src = 's%d'", 1+rng.Intn(4)),
			fmt.Sprintf("T1.src IN ('s%d', 's%d')", 1+rng.Intn(4), 1+rng.Intn(4)),
			fmt.Sprintf("T1.a > %d", rng.Intn(20)),
			fmt.Sprintf("T1.a BETWEEN %d AND %d", rng.Intn(10), 5+rng.Intn(15)),
			fmt.Sprintf("T1.b LIKE '%s%%'", pick(rng, []string{"x", "y", "z"})),
			fmt.Sprintf("T1.a <> %d", rng.Intn(20)),
			fmt.Sprintf("NOT (T1.src = 's%d')", 1+rng.Intn(4)),
		}
		if join {
			options = append(options,
				"T1.src = T2.src",
				"T1.a = T2.c",
				fmt.Sprintf("T2.c < %d", rng.Intn(20)),
				fmt.Sprintf("T2.d = '%s'", pick(rng, []string{"x", "y", "z"})),
			)
		}
		preds = append(preds, pick(rng, options))
	}
	n := rng.Intn(4)
	for i := 0; i < n; i++ {
		addPred()
	}
	sql := "SELECT "
	if rng.Intn(3) == 0 {
		sql += "DISTINCT "
	}
	sql += items + " FROM " + from
	if len(preds) > 0 {
		connector := " AND "
		if rng.Intn(4) == 0 {
			connector = " OR "
		}
		sql += " WHERE " + strings.Join(preds, connector)
	}
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("generated unparseable SQL %q: %v", sql, err)
	}
	return sql, sel
}

func pick(rng *rand.Rand, ss []string) string { return ss[rng.Intn(len(ss))] }

// referenceEval evaluates a SELECT by brute force: cross product of visible
// rows, compiled WHERE, projection, DISTINCT. Returns a canonical sorted
// multiset string.
func referenceEval(t *testing.T, db *DB, sel *sqlparser.SelectStmt) (string, error) {
	t.Helper()
	snap := db.Snapshot()
	var bindings []exec.Binding
	for _, ref := range sel.From {
		tbl, err := db.Catalog().Get(ref.Name)
		if err != nil {
			return "", err
		}
		bindings = append(bindings, exec.Binding{Name: ref.Binding(), Table: tbl})
	}
	layout := exec.NewLayout(bindings)
	var pred exec.Evaluator
	if sel.Where != nil {
		var err error
		pred, err = exec.Compile(sel.Where, layout)
		if err != nil {
			return "", err
		}
	}
	var itemEvals []exec.Evaluator
	for _, it := range sel.Items {
		if it.Star {
			return "", fmt.Errorf("reference: star unsupported")
		}
		ev, err := exec.Compile(it.Expr, layout)
		if err != nil {
			return "", err
		}
		itemEvals = append(itemEvals, ev)
	}

	// Cross product of visible rows. Iterate the LAYOUT's bindings: they
	// carry the computed offsets (the local slice does not).
	tuples := [][]types.Value{make([]types.Value, layout.Width())}
	for _, b := range layout.Bindings {
		var next [][]types.Value
		for _, base := range tuples {
			for _, r := range b.Table.Rows() {
				if !snap.Visible(r) {
					continue
				}
				tup := make([]types.Value, layout.Width())
				copy(tup, base)
				copy(tup[b.Offset:b.Offset+len(r.Values)], r.Values)
				next = append(next, tup)
			}
		}
		tuples = next
	}

	var out []string
	seen := map[string]bool{}
	for _, tup := range tuples {
		ok, err := exec.EvalPredicate(pred, tup)
		if err != nil {
			return "", err
		}
		if !ok {
			continue
		}
		vals := make([]string, len(itemEvals))
		for i, ev := range itemEvals {
			v, err := ev(tup)
			if err != nil {
				return "", err
			}
			vals[i] = v.String()
		}
		key := strings.Join(vals, "|")
		if sel.Distinct {
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		out = append(out, key)
	}
	sort.Strings(out)
	return strings.Join(out, ";"), nil
}

// planAndRun executes the SQL through the full planner and canonicalizes
// the result the same way.
func planAndRun(t *testing.T, db *DB, sql string) (string, error) {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		return "", err
	}
	var out []string
	for _, row := range res.Rows {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = v.String()
		}
		out = append(out, strings.Join(vals, "|"))
	}
	sort.Strings(out)
	return strings.Join(out, ";"), nil
}
