package engine

import (
	"math/rand"
	"strings"

	"trac/internal/exec"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/types"
)

// ANALYZE parameters: sample size bounds memory and time on 10M-row tables;
// 64 equi-depth buckets resolve range selectivities to ~1.5%.
const (
	analyzeSampleSize = 20_000
	analyzeBuckets    = 64
)

// execAnalyze recomputes planner statistics for one table or all tables.
func (db *DB) execAnalyze(s *sqlparser.AnalyzeStmt) error {
	var names []string
	if s.Table != "" {
		names = []string{s.Table}
	} else {
		names = db.catalog.Names()
	}
	snap := db.Snapshot()
	for _, name := range names {
		tbl, err := db.catalog.Get(name)
		if err != nil {
			return err
		}
		analyzeTable(tbl, snap)
	}
	return nil
}

// analyzeTable samples the visible rows and publishes per-column statistics.
// Column min/max comes from sealed-segment zone maps when segments cover the
// whole heap (exact, zero value passes); otherwise from the sample.
func analyzeTable(tbl *storage.Table, snap interface{ Visible(*storage.Row) bool }) {
	heap := tbl.Snap()
	all := heap.Rows
	covered := len(all) > 0 && heap.Sealed == len(all)
	visible := make([]*storage.Row, 0, len(all))
	for _, r := range all {
		if snap.Visible(r) {
			visible = append(visible, r)
		}
	}
	rowCount := len(visible)

	// Seeded reservoir sampling: reproducible, and unlike stride sampling
	// it does not alias against periodic patterns in the load order.
	sample := visible
	if rowCount > analyzeSampleSize {
		rng := rand.New(rand.NewSource(20060912))
		sample = make([]*storage.Row, analyzeSampleSize)
		copy(sample, visible[:analyzeSampleSize])
		for i := analyzeSampleSize; i < rowCount; i++ {
			if j := rng.Intn(i + 1); j < analyzeSampleSize {
				sample[j] = visible[i]
			}
		}
	}

	nCols := tbl.Schema.NumColumns()
	stats := &storage.TableStats{RowCount: rowCount, Columns: make([]storage.ColumnStats, nCols)}
	for ci := 0; ci < nCols; ci++ {
		var vals []types.Value
		distinct := make(map[string]struct{})
		nulls := 0
		var sb strings.Builder
		for _, r := range sample {
			v := r.Values[ci]
			if v.IsNull() {
				nulls++
				continue
			}
			vals = append(vals, v)
			sb.Reset()
			exec.EncodeKey(&sb, v)
			distinct[sb.String()] = struct{}{}
		}
		cs := storage.ColumnStats{NonNull: len(vals), Nulls: nulls}
		d := len(distinct)
		switch {
		case len(sample) == rowCount:
			cs.Distinct = d // exact
		case d > len(sample)/2:
			// Mostly unique in the sample: scale to the table (key-like).
			if len(sample) > 0 {
				cs.Distinct = d * rowCount / len(sample)
			}
		default:
			// Duplicate-heavy: the sample has likely seen most values.
			cs.Distinct = d
		}
		cs.Histogram = storage.BuildHistogram(vals, analyzeBuckets)
		if covered {
			if mn, mx, ok := storage.MinMaxFromZones(heap.Segments, ci); ok {
				cs.Min, cs.Max, cs.MinMaxExact = mn, mx, true
			}
		}
		if !cs.MinMaxExact {
			for _, v := range vals {
				if cs.Min.IsNull() || types.Less(v, cs.Min) {
					cs.Min = v
				}
				if cs.Max.IsNull() || types.Less(cs.Max, v) {
					cs.Max = v
				}
			}
		}
		stats.Columns[ci] = cs
	}
	tbl.SetStats(stats)
}
