package engine

import (
	"fmt"
	"strings"
	"testing"
)

func TestAnalyzeComputesStats(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE T (sid TEXT, v BIGINT, x DOUBLE)`)
	b := db.BeginBatch()
	for i := 0; i < 1000; i++ {
		// 10 distinct sids, v uniform 0..999, every 10th x NULL.
		x := fmt.Sprintf("%d.5", i)
		if i%10 == 0 {
			x = "NULL"
		}
		if _, err := b.Exec(fmt.Sprintf(`INSERT INTO T VALUES ('s%d', %d, %s)`, i%10, i, x)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`ANALYZE T`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("T")
	st := tbl.Stats()
	if st == nil {
		t.Fatal("no stats after ANALYZE")
	}
	if st.RowCount != 1000 {
		t.Errorf("row count = %d", st.RowCount)
	}
	if st.Columns[0].Distinct != 10 {
		t.Errorf("sid distinct = %d, want 10", st.Columns[0].Distinct)
	}
	if st.Columns[1].Distinct != 1000 {
		t.Errorf("v distinct = %d, want 1000", st.Columns[1].Distinct)
	}
	if st.Columns[2].Nulls != 100 {
		t.Errorf("x nulls = %d, want 100", st.Columns[2].Nulls)
	}
	if st.Columns[1].Histogram == nil {
		t.Error("v histogram missing")
	}
}

func TestAnalyzeAllTables(t *testing.T) {
	db := paperDB(t)
	if _, err := db.Exec(`ANALYZE`); err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Catalog().Names() {
		tbl, _ := db.Catalog().Get(name)
		if tbl.Stats() == nil {
			t.Errorf("table %s not analyzed", name)
		}
	}
	if _, err := db.Exec(`ANALYZE NoSuchTable`); err == nil {
		t.Error("analyzing a missing table should fail")
	}
}

func TestAnalyzeImprovesRangePlans(t *testing.T) {
	// A skewed table: nearly all event values below 100; a range predicate
	// above 900 is tiny. Without stats the planner guesses 1/3 for the
	// range and declines the (range) index; with stats it takes it.
	db := New()
	db.MustExec(`CREATE TABLE E (sid TEXT, v BIGINT)`)
	db.MustExec(`CREATE INDEX iv ON E (v)`)
	b := db.BeginBatch()
	for i := 0; i < 3000; i++ {
		v := i % 100
		if i%100 == 0 {
			v = 900 + i%30
		}
		if _, err := b.Exec(fmt.Sprintf(`INSERT INTO E VALUES ('s%d', %d)`, i%7, v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	q := `SELECT sid FROM E WHERE v >= 900`
	before, err := db.ExplainAt(q, db.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`ANALYZE E`)
	after, err := db.ExplainAt(q, db.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after, "index scan") {
		t.Errorf("with stats the range index should win:\nbefore: %s\nafter: %s", before, after)
	}
	// Results are identical either way.
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 30 {
		t.Errorf("rows = %d, want 30", len(res.Rows))
	}
}

func TestAnalyzeSamplesLargeTables(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE Big (sid TEXT, v BIGINT)`)
	b := db.BeginBatch()
	for i := 0; i < 50_000; i++ {
		if _, err := b.Exec(fmt.Sprintf(`INSERT INTO Big VALUES ('s%d', %d)`, i%50, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`ANALYZE Big`)
	tbl, _ := db.Catalog().Get("Big")
	st := tbl.Stats()
	if st.RowCount != 50_000 {
		t.Errorf("row count = %d", st.RowCount)
	}
	// sid is duplicate-heavy: the sampled estimate should be near 50, not
	// scaled to thousands.
	if st.Columns[0].Distinct < 40 || st.Columns[0].Distinct > 100 {
		t.Errorf("sid distinct estimate = %d, want ~50", st.Columns[0].Distinct)
	}
	// v is key-like: the estimate should scale toward the row count.
	if st.Columns[1].Distinct < 20_000 {
		t.Errorf("v distinct estimate = %d, want near 50000", st.Columns[1].Distinct)
	}
}
