package engine

import (
	"fmt"
	"sync"

	"trac/internal/storage"
	"trac/internal/types"
)

// Session scopes temp tables to a user interaction, matching the paper's
// behaviour: "The temporary table persists until the end of a user session.
// The user can decide whether to copy it to a permanent table before the
// end of a session or to allow it to be discarded automatically."
type Session struct {
	db *DB

	mu    sync.Mutex
	temps []string
}

// NewSession opens a session.
func (db *DB) NewSession() *Session { return &Session{db: db} }

// DB returns the owning database.
func (s *Session) DB() *DB { return s.db }

// CreateTempTable materializes rows into a fresh catalog-registered table
// named with the given prefix (e.g. "sys_temp_a"), and returns its full
// name. The table is queryable with ordinary SQL until the session closes.
//
// Temp-table churn deliberately does not bump the catalog version: names
// are globally unique (tempSeq), so no cached recency plan can ever resolve
// against the wrong table, and bumping per session interaction would evict
// the entire plan cache each time.
//
//tracvet:ignore catbump temp tables are uniquely named and session-private; bumping would evict the plan cache per interaction
func (s *Session) CreateTempTable(prefix string, cols []storage.Column, rows [][]types.Value) (string, error) {
	name := fmt.Sprintf("%s%d", prefix, s.db.tempSeq.Add(1))
	schema, err := storage.NewSchema(cols)
	if err != nil {
		return "", err
	}
	tbl := storage.NewTable(name, schema)
	if err := s.db.catalog.Create(tbl); err != nil {
		return "", err
	}
	tx := s.db.mgr.Begin()
	for _, r := range rows {
		if err := tx.InsertRow(tbl, storage.NewRow(r, 0)); err != nil {
			tx.Abort()
			_ = s.db.catalog.Drop(name)
			return "", err
		}
	}
	if err := tx.Commit(); err != nil {
		return "", err
	}
	s.mu.Lock()
	s.temps = append(s.temps, name)
	s.mu.Unlock()
	return name, nil
}

// Persist renames a temp table's contents into a permanent table (the
// "copy to a permanent table" option from the paper). The temp table
// remains until the session closes.
func (s *Session) Persist(tempName, permanentName string) error {
	src, err := s.db.catalog.Get(tempName)
	if err != nil {
		return err
	}
	dst := storage.NewTable(permanentName, src.Schema)
	if err := s.db.catalog.Create(dst); err != nil {
		return err
	}
	// A permanent table under a user-chosen name is visible to every future
	// query; cached plans compiled against the narrower catalog must not
	// outlive its creation.
	s.db.catalog.BumpVersion()
	snap := s.db.Snapshot()
	tx := s.db.mgr.Begin()
	for _, r := range src.Rows() {
		if !snap.Visible(r) {
			continue
		}
		if err := tx.InsertRow(dst, storage.NewRow(r.Values, 0)); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// TempTables lists the session's temp table names in creation order.
func (s *Session) TempTables() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.temps...)
}

// Close drops all session temp tables. Like CreateTempTable, it leaves the
// catalog version alone: the dropped names can never recur, so no cached
// plan can be replayed against them.
//
//tracvet:ignore catbump dropped temp-table names never recur; see CreateTempTable
func (s *Session) Close() error {
	s.mu.Lock()
	temps := s.temps
	s.temps = nil
	s.mu.Unlock()
	var firstErr error
	for _, name := range temps {
		if err := s.db.catalog.Drop(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
