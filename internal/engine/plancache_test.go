package engine

import (
	"fmt"
	"strings"
	"testing"
)

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), 1, i)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get("k0", 1); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", 1, 3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Get("k1", 1); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k, 1); !ok {
			t.Errorf("%s should survive", k)
		}
	}
}

func TestPlanCacheVersionMismatchEvicts(t *testing.T) {
	c := NewPlanCache(8)
	c.Put("q", 1, "old")
	if _, ok := c.Get("q", 2); ok {
		t.Fatal("stale version must miss")
	}
	if c.Len() != 0 {
		t.Errorf("stale entry should be evicted on lookup, Len = %d", c.Len())
	}
	c.Put("q", 2, "new")
	if v, ok := c.Get("q", 2); !ok || v != "new" {
		t.Errorf("got %v, %v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestPlanCacheReplaceExisting(t *testing.T) {
	c := NewPlanCache(2)
	c.Put("q", 1, "a")
	c.Put("q", 1, "b")
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v, _ := c.Get("q", 1); v != "b" {
		t.Errorf("value = %v", v)
	}
}

func TestNormalizeSQL(t *testing.T) {
	a := NormalizeSQL("SELECT   x\n  FROM\tt  WHERE y = 'a  b'")
	b := NormalizeSQL("SELECT x FROM t WHERE y = 'a  b'")
	if a != b {
		t.Errorf("normalization differs:\n%q\n%q", a, b)
	}
	if a != "SELECT x FROM t WHERE y = 'a  b'" {
		t.Errorf("normalized = %q", a)
	}
	// Literals differing only in internal whitespace are DIFFERENT queries
	// and must not share a cache key.
	if NormalizeSQL("SELECT 'a b'") == NormalizeSQL("SELECT 'a  b'") {
		t.Error("distinct literals merged")
	}
	// Escaped quotes stay inside the literal.
	if got := NormalizeSQL("SELECT  'it''s   ok'  "); got != "SELECT 'it''s   ok'" {
		t.Errorf("escaped-quote literal = %q", got)
	}
	if NormalizeSQL("  SELECT 1  ") != "SELECT 1" {
		t.Error("trim failed")
	}
	// Unterminated literal: copied through without panicking.
	if got := NormalizeSQL("SELECT 'oops"); got != "SELECT 'oops" {
		t.Errorf("unterminated literal = %q", got)
	}
}

func TestDDLBumpsCatalogVersion(t *testing.T) {
	db := New()
	v0 := db.CatalogVersion()
	db.MustExec(`CREATE TABLE t (id TEXT PRIMARY KEY, v BIGINT)`)
	v1 := db.CatalogVersion()
	if v1 <= v0 {
		t.Fatalf("CREATE TABLE did not bump version: %d -> %d", v0, v1)
	}
	db.MustExec(`CREATE INDEX idx_v ON t (v)`)
	v2 := db.CatalogVersion()
	if v2 <= v1 {
		t.Fatalf("CREATE INDEX did not bump version: %d -> %d", v1, v2)
	}
	if err := db.AddCheck("t", "v > 0"); err != nil {
		t.Fatal(err)
	}
	v3 := db.CatalogVersion()
	if v3 <= v2 {
		t.Fatalf("AddCheck did not bump version: %d -> %d", v2, v3)
	}
	db.MustExec(`DROP TABLE t`)
	if db.CatalogVersion() <= v3 {
		t.Fatal("DROP TABLE did not bump version")
	}
}

func TestSessionTempTablesDoNotBumpVersion(t *testing.T) {
	// The recency reporter creates sys_temp_* tables on EVERY report; if
	// that bumped the catalog version, the plan cache would be evicted by
	// its own consumers and never hit.
	db := New()
	db.MustExec(`CREATE TABLE t (id TEXT)`)
	v := db.CatalogVersion()
	sess := db.NewSession()
	defer sess.Close()
	if _, err := sess.CreateTempTable("sys_temp_a", nil, nil); err != nil {
		t.Fatal(err)
	}
	if db.CatalogVersion() != v {
		t.Errorf("temp table creation bumped catalog version %d -> %d", v, db.CatalogVersion())
	}
}

func TestQueryAtCachesParsedAST(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (id TEXT, v BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES ('a', 1), ('b', 2)`)

	h0, _ := db.PlanCache().Stats()
	if _, err := db.Query("SELECT id FROM t WHERE v = 1"); err != nil {
		t.Fatal(err)
	}
	// Same text modulo whitespace: the parse must be a cache hit.
	if _, err := db.Query("SELECT id   FROM t\n WHERE v = 1"); err != nil {
		t.Fatal(err)
	}
	h1, _ := db.PlanCache().Stats()
	if h1 != h0+1 {
		t.Errorf("hits %d -> %d, want one AST cache hit", h0, h1)
	}

	// Cached ASTs survive DDL (they are name-resolution free), and queries
	// still run correctly against the changed catalog.
	db.MustExec(`CREATE INDEX idx_v ON t (v)`)
	res, err := db.Query("SELECT id FROM t WHERE v = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "a" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestResultFormatParallelNote(t *testing.T) {
	r := &Result{Columns: []string{"x"}, Parallel: 1}
	if out := r.Format(); strings.Contains(out, "parallel") {
		t.Errorf("serial result should not mention parallelism:\n%s", out)
	}
	r.Parallel = 4
	if out := r.Format(); !strings.Contains(out, "parallel degree 4") {
		t.Errorf("parallel result should note its degree:\n%s", out)
	}
}
