package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"trac/internal/crashfs"
)

func walDB(t *testing.T, path string) *DB {
	t.Helper()
	db := New()
	if err := db.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestWALReplayRebuildsDatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trac.wal")
	db := walDB(t, path)
	db.MustExec(`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`)
	db.MustExec(`CREATE TABLE Activity (mach_id TEXT, value TEXT)`)
	db.MustExec(`CREATE INDEX i ON Activity (mach_id)`)
	db.MustExec(`INSERT INTO Heartbeat VALUES ('m1', '2006-03-15 14:20:05')`)
	db.MustExec(`INSERT INTO Activity VALUES ('m1', 'idle'), ('m2', 'busy')`)
	db.MustExec(`UPDATE Activity SET value = 'busy' WHERE mach_id = 'm1'`)
	db.MustExec(`DELETE FROM Activity WHERE mach_id = 'm2'`)
	if err := db.DetachWAL(); err != nil {
		t.Fatal(err)
	}

	// "Crash" and recover into a fresh database.
	db2 := walDB(t, path)
	defer db2.DetachWAL()
	res, err := db2.Query(`SELECT mach_id, value FROM Activity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "busy" {
		t.Errorf("recovered Activity = %v", res.Rows)
	}
	res, _ = db2.Query(`SELECT COUNT(*) FROM Heartbeat`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("recovered Heartbeat = %v", res.Rows[0][0])
	}
	// The index came back through the logged CREATE INDEX.
	act, _ := db2.Catalog().Get("Activity")
	if act.Index(0) == nil {
		t.Error("index not recovered")
	}
	// Recovery keeps appending: new writes survive another cycle.
	db2.MustExec(`INSERT INTO Activity VALUES ('m3', 'idle')`)
	db2.DetachWAL()
	db3 := walDB(t, path)
	defer db3.DetachWAL()
	res, _ = db3.Query(`SELECT COUNT(*) FROM Activity`)
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("second recovery = %v", res.Rows[0][0])
	}
}

func TestWALBatchesAreAtomicUnderTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trac.wal")
	db := walDB(t, path)
	db.MustExec(`CREATE TABLE T (a BIGINT)`)
	b := db.BeginBatch()
	b.Exec(`INSERT INTO T VALUES (1)`)
	b.Exec(`INSERT INTO T VALUES (2)`)
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	db.DetachWAL()

	// Simulate a torn write: append garbage (a record length with missing
	// body) to the log.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{40, 'I', 'N', 'S'})
	f.Close()

	db2 := walDB(t, path)
	defer db2.DetachWAL()
	res, err := db2.Query(`SELECT COUNT(*) FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("complete batch must replay (2 rows), torn tail dropped: %v", res.Rows[0][0])
	}
}

func TestWALUncommittedBatchNotLogged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trac.wal")
	db := walDB(t, path)
	db.MustExec(`CREATE TABLE T (a BIGINT)`)
	b := db.BeginBatch()
	b.Exec(`INSERT INTO T VALUES (1)`)
	b.Abort()
	db.DetachWAL()

	db2 := walDB(t, path)
	defer db2.DetachWAL()
	res, _ := db2.Query(`SELECT COUNT(*) FROM T`)
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("aborted batch leaked into WAL: %v", res.Rows[0][0])
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "trac.wal")
	dumpPath := filepath.Join(dir, "trac.dump")
	db := walDB(t, walPath)
	db.MustExec(`CREATE TABLE T (a BIGINT)`)
	for i := 0; i < 10; i++ {
		db.MustExec(`INSERT INTO T VALUES (1)`)
	}
	if err := db.Checkpoint(dumpPath); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != walHeaderSize {
		t.Errorf("WAL not truncated: %d bytes, want bare header (%d)", fi.Size(), walHeaderSize)
	}
	// Post-checkpoint writes land in the (fresh) log.
	db.MustExec(`INSERT INTO T VALUES (2)`)
	db.DetachWAL()

	// Recovery = load dump, then replay log.
	db2, err := LoadFile(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.AttachWAL(walPath); err != nil {
		t.Fatal(err)
	}
	defer db2.DetachWAL()
	res, _ := db2.Query(`SELECT COUNT(*) FROM T`)
	if res.Rows[0][0].Int() != 11 {
		t.Errorf("checkpoint+log recovery = %v rows, want 11", res.Rows[0][0])
	}
}

func TestWALErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	db := walDB(t, path)
	if err := db.AttachWAL(path); err == nil {
		t.Error("double attach should fail")
	}
	db.DetachWAL()
	if err := db.DetachWAL(); err != nil {
		t.Errorf("double detach should be a no-op: %v", err)
	}
	if err := db.Checkpoint(filepath.Join(t.TempDir(), "d")); err == nil {
		t.Error("checkpoint without WAL should fail")
	}
	// Replay of a WAL whose statements fail (e.g. table already exists)
	// surfaces an error.
	db3 := New()
	db3.MustExec(`CREATE TABLE X (a BIGINT)`)
	dbW := New()
	if err := dbW.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	dbW.MustExec(`CREATE TABLE X (a BIGINT)`)
	dbW.DetachWAL()
	if err := db3.AttachWAL(path); err == nil {
		t.Error("replaying conflicting DDL should fail")
		db3.DetachWAL()
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.wal")
	db := walDB(t, path)
	db.walMu.Lock()
	db.wal.Sync = true
	db.walMu.Unlock()
	db.MustExec(`CREATE TABLE T (a BIGINT)`)
	const writers, per = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := db.Exec(fmt.Sprintf(`INSERT INTO T VALUES (%d)`, id*per+j)); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.DetachWAL(); err != nil {
		t.Fatal(err)
	}
	db2 := walDB(t, path)
	defer db2.DetachWAL()
	res, _ := db2.Query(`SELECT COUNT(*) FROM T`)
	if res.Rows[0][0].Int() != writers*per {
		t.Errorf("group-commit recovery = %v rows, want %d", res.Rows[0][0], writers*per)
	}
}

func TestWALFsyncFailurePoisons(t *testing.T) {
	m := crashfs.NewMem()
	db := New()
	db.fsys = m
	if err := db.AttachWAL("p.wal"); err != nil {
		t.Fatal(err)
	}
	db.walMu.Lock()
	db.wal.Sync = true
	db.walMu.Unlock()
	db.MustExec(`CREATE TABLE T (a BIGINT)`)
	// Arm the next mutating op to fail: it will be the record write or the
	// fsync of the next commit; either must poison the WAL.
	m.SetCrashAt(1)
	if _, err := db.Exec(`INSERT INTO T VALUES (1)`); err == nil {
		t.Fatal("commit after injected I/O failure should error")
	}
	m.Recover()
	// The fs is healthy again, but the WAL must stay poisoned: its durable
	// contents are unknowable after a failed fsync.
	_, err := db.Exec(`INSERT INTO T VALUES (2)`)
	if !errors.Is(err, ErrWALPoisoned) && !errors.Is(err, ErrWALAppend) {
		t.Fatalf("post-poison commit error = %v, want poisoned", err)
	}
	if err := db.Checkpoint("d.dump"); !errors.Is(err, ErrWALPoisoned) {
		t.Fatalf("post-poison checkpoint error = %v, want ErrWALPoisoned", err)
	}
	// Close reports rather than swallows.
	if err := db.DetachWAL(); err == nil {
		t.Error("detaching a poisoned WAL should report the failure")
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL!"+"garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := New()
	if err := db.AttachWAL(path); err == nil {
		db.DetachWAL()
		t.Fatal("attaching a non-WAL file should fail")
	}
}

func TestWALSyncMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.wal")
	db := walDB(t, path)
	db.walMu.Lock()
	db.wal.Sync = true
	db.walMu.Unlock()
	db.MustExec(`CREATE TABLE T (a BIGINT)`)
	db.MustExec(`INSERT INTO T VALUES (1)`)
	db.DetachWAL()
	db2 := walDB(t, path)
	defer db2.DetachWAL()
	res, _ := db2.Query(`SELECT COUNT(*) FROM T`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("sync mode rows = %v", res.Rows[0][0])
	}
}
