package engine

import (
	"strings"
	"testing"

	"trac/internal/storage"
	"trac/internal/types"
)

func tsv(t *testing.T, s string) types.Value {
	t.Helper()
	ts, err := types.ParseTime(s)
	if err != nil {
		t.Fatal(err)
	}
	return types.NewTime(ts)
}

func TestSessionTempTableLifecycle(t *testing.T) {
	db := New()
	sess := db.NewSession()

	cols := []storage.Column{
		{Name: "sid", Kind: types.KindString},
		{Name: "recency", Kind: types.KindTime},
	}
	rows := [][]types.Value{
		{types.NewString("m1"), tsv(t, "2006-03-15 14:20:05")},
		{types.NewString("m3"), tsv(t, "2006-03-15 14:40:05")},
	}
	name, err := sess.CreateTempTable("sys_temp_a", cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "sys_temp_a") {
		t.Errorf("name = %q", name)
	}
	// Queryable with plain SQL, as the paper's session transcript shows.
	res, err := db.Query(`SELECT sid, recency FROM ` + name + ` ORDER BY sid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "m1" {
		t.Errorf("temp rows = %v", res.Rows)
	}

	if got := sess.TempTables(); len(got) != 1 || got[0] != name {
		t.Errorf("TempTables = %v", got)
	}

	// Persist survives session close.
	if err := sess.Persist(name, "saved_recency"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT * FROM ` + name); err == nil {
		t.Error("temp table should be dropped after Close")
	}
	res, err = db.Query(`SELECT COUNT(*) FROM saved_recency`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("persisted rows = %v", res.Rows)
	}
}

func TestTempTableNamesAreUnique(t *testing.T) {
	db := New()
	sess := db.NewSession()
	defer sess.Close()
	cols := []storage.Column{{Name: "x", Kind: types.KindInt}}
	a, err := sess.CreateTempTable("sys_temp_e", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.CreateTempTable("sys_temp_e", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Errorf("names collide: %q", a)
	}
}

func TestSessionCloseIsIdempotent(t *testing.T) {
	db := New()
	sess := db.NewSession()
	cols := []storage.Column{{Name: "x", Kind: types.KindInt}}
	if _, err := sess.CreateTempTable("sys_temp_a", cols, [][]types.Value{{types.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
