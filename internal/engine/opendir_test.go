package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trac/internal/crashfs"
	"trac/internal/storage"
)

// bulkInsert issues INSERTs of n rows into T(a BIGINT, src TEXT) starting
// at base, batched to keep statement counts sane.
func bulkInsert(t *testing.T, db *DB, table string, base, n int) {
	t.Helper()
	const batch = 500
	for off := 0; off < n; off += batch {
		lim := off + batch
		if lim > n {
			lim = n
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
		for i := off; i < lim; i++ {
			if i > off {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 's%d')", base+i, (base+i)%4)
		}
		db.MustExec(sb.String())
	}
}

func countRows(t *testing.T, db *DB, table string) int64 {
	t.Helper()
	res, err := db.Query(`SELECT COUNT(*) FROM ` + table)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].Int()
}

func TestOpenDirFreshWALOnly(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 1 || db.Dir() != dir {
		t.Fatalf("fresh dir epoch=%d dir=%q", db.Epoch(), db.Dir())
	}
	db.MustExec(`CREATE TABLE T (a BIGINT, src TEXT)`)
	db.MustExec(`INSERT INTO T VALUES (1, 's0'), (2, 's1')`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Before any checkpoint there is no manifest: recovery is WAL-only.
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !os.IsNotExist(err) {
		t.Fatalf("manifest should not exist before first checkpoint: %v", err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countRows(t, db2, "T"); got != 2 {
		t.Fatalf("WAL-only recovery = %d rows, want 2", got)
	}
}

func TestCheckpointDirSpillsAndRecoversLazily(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE Activity (a BIGINT, src TEXT)`)
	db.MustExec(`CREATE INDEX ia ON Activity (a)`)
	total := storage.DefaultSegmentSize + 300
	bulkInsert(t, db, "Activity", 0, total)
	// Deletions before the checkpoint: only the consistent visible cut may
	// be persisted.
	db.MustExec(`DELETE FROM Activity WHERE a < 100`)
	live := total - 100

	if err := db.CheckpointDir(); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 2 {
		t.Fatalf("epoch after checkpoint = %d, want 2", db.Epoch())
	}
	// New-epoch files exist; the old epoch's WAL is swept.
	for _, want := range []string{"MANIFEST", "dump.2", "wal.2.log", filepath.Join("seg", "activity.2.seg")} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing %s after checkpoint: %v", want, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.1.log")); !os.IsNotExist(err) {
		t.Fatal("old epoch WAL not cleaned up")
	}
	// The database stays writable across the swap.
	db.MustExec(`INSERT INTO Activity VALUES (999999, 's0')`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl, err := db2.Catalog().Get("Activity")
	if err != nil {
		t.Fatal(err)
	}
	// Recovery left the spilled bulk cold, but the index metadata is known.
	if !tbl.Spilled() {
		t.Fatal("spilled table should be cold after OpenDir")
	}
	if cols := tbl.IndexedColumns(); len(cols) != 1 || cols[0] != 0 {
		t.Fatalf("pre-hydration IndexedColumns = %v", cols)
	}
	if got := countRows(t, db2, "Activity"); got != int64(live)+1 {
		t.Fatalf("recovered rows = %d, want %d", got, live+1)
	}
	if tbl.Spilled() {
		t.Fatal("query should have hydrated the table")
	}
	// Point query through the recovered (pending) index.
	res, err := db2.Query(`SELECT src FROM Activity WHERE a = 4000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "s0" {
		t.Fatalf("indexed lookup after recovery = %v", res.Rows)
	}
	if got := countRows(t, db2, "Activity"); got != int64(live)+1 {
		t.Fatalf("post-hydration rows = %d, want %d", got, live+1)
	}
}

func TestCheckpointDirRepeatedEpochs(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE T (a BIGINT, src TEXT)`)
	for i := 0; i < 3; i++ {
		bulkInsert(t, db, "T", i*10, 10)
		if err := db.CheckpointDir(); err != nil {
			t.Fatal(err)
		}
	}
	if db.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", db.Epoch())
	}
	bulkInsert(t, db, "T", 100, 5)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countRows(t, db2, "T"); got != 35 {
		t.Fatalf("rows = %d, want 35", got)
	}
	if db2.Epoch() != 4 {
		t.Fatalf("recovered epoch = %d, want 4", db2.Epoch())
	}
}

func TestOpenDirRecoveryIsLazy(t *testing.T) {
	// Recovery must not read segment files: O(catalog + WAL tail), not
	// O(data). The counting FS records which paths are opened.
	m := crashfs.NewMem()
	cfs := &countingFS{FS: m}
	db, err := OpenDir("db", WithFS(cfs))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE T (a BIGINT, src TEXT)`)
	bulkInsert(t, db, "T", 0, storage.DefaultSegmentSize)
	if err := db.CheckpointDir(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	cfs.opened = nil
	db2, err := OpenDir("db", WithFS(cfs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, p := range cfs.opened {
		if strings.HasSuffix(p, ".seg") {
			t.Fatalf("OpenDir touched segment file %s; recovery must be lazy", p)
		}
	}
	// First query pays for hydration exactly once.
	if got := countRows(t, db2, "T"); got != int64(storage.DefaultSegmentSize) {
		t.Fatalf("rows = %d", got)
	}
	segOpens := 0
	for _, p := range cfs.opened {
		if strings.HasSuffix(p, ".seg") {
			segOpens++
		}
	}
	if segOpens != 1 {
		t.Fatalf("segment file opened %d times, want exactly 1", segOpens)
	}
}

type countingFS struct {
	crashfs.FS
	opened []string
}

func (c *countingFS) OpenFile(path string, flag int, perm os.FileMode) (crashfs.File, error) {
	c.opened = append(c.opened, path)
	return c.FS.OpenFile(path, flag, perm)
}

func TestOpenDirVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE T (a BIGINT, src TEXT)`)
	bulkInsert(t, db, "T", 0, storage.DefaultSegmentSize)
	if err := db.CheckpointDir(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	segPath := filepath.Join(dir, "seg", "t.2.seg")
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenDir(dir, WithVerify()); err == nil {
		t.Fatal("verify mode must reject a corrupted segment file")
	}
	// Lazy mode opens fine (the catalog is intact); the corruption is
	// caught by Hydrate on first touch.
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl, _ := db2.Catalog().Get("T")
	if err := tbl.Hydrate(); err == nil {
		t.Fatal("hydrating a corrupted segment file must fail")
	}
}

func TestOpenDirRejectsCorruptManifestAndDump(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE T (a BIGINT, src TEXT)`)
	db.MustExec(`INSERT INTO T VALUES (1, 's0')`)
	if err := db.CheckpointDir(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	flip := func(path string, pos int) func() {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), raw...)
		if pos < 0 {
			pos = len(mut) + pos
		}
		mut[pos] ^= 0x08
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		return func() { os.WriteFile(path, raw, 0o644) }
	}

	restore := flip(filepath.Join(dir, manifestName), 9)
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	restore()
	restore = flip(filepath.Join(dir, "dump.2"), 12)
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("corrupt dump accepted")
	}
	restore()
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countRows(t, db2, "T"); got != 1 {
		t.Fatalf("restored dir rows = %d", got)
	}
}

func TestCheckpointDirPersistsChecksAndSourceColumn(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE M (a BIGINT, src TEXT, CHECK (a >= 0))`)
	mt, err := db.Catalog().Get("M")
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Schema.SetSourceColumn("src"); err != nil {
		t.Fatal(err)
	}
	db.Catalog().BumpVersion()
	db.MustExec(`INSERT INTO M VALUES (7, 's1')`)
	if err := db.CheckpointDir(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl, err := db2.Catalog().Get("M")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema.SourceColumn != 1 {
		t.Fatalf("source column = %d, want 1", tbl.Schema.SourceColumn)
	}
	if len(TableChecks(tbl)) != 1 {
		t.Fatalf("checks = %d, want 1", len(TableChecks(tbl)))
	}
	if _, err := db2.Exec(`INSERT INTO M VALUES (-1, 's1')`); err == nil {
		t.Fatal("recovered CHECK constraint not enforced")
	}
}

func TestOpenDirMemFSRoundTrip(t *testing.T) {
	m := crashfs.NewMem()
	db, err := OpenDir("d", WithFS(m), WithSyncWAL())
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE T (a BIGINT, src TEXT)`)
	db.MustExec(`INSERT INTO T VALUES (1, 's0'), (2, 's1'), (3, 's2')`)
	if err := db.CheckpointDir(); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`INSERT INTO T VALUES (4, 's3')`)
	// Crash without Close: everything since the checkpoint was fsynced by
	// the group-committing WAL, so nothing may be lost.
	m.Recover()
	db2, err := OpenDir("d", WithFS(m))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countRows(t, db2, "T"); got != 4 {
		t.Fatalf("post-crash rows = %d, want 4", got)
	}
}
