package engine

import (
	"strings"
	"testing"
)

// paperDB builds the paper's Activity/Routing/Heartbeat schema with the
// Table 1 / Table 2 sample data.
func paperDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	fixtures := []string{
		`CREATE TABLE Activity (mach_id TEXT, value TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Routing (mach_id TEXT, neighbor TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`,
		`CREATE INDEX idx_act_mach ON Activity (mach_id)`,
		`CREATE INDEX idx_rout_mach ON Routing (mach_id)`,
		`INSERT INTO Activity VALUES
			('m1', 'idle', TIMESTAMP '2006-03-11 20:37:46'),
			('m2', 'busy', TIMESTAMP '2006-02-10 18:22:01'),
			('m3', 'idle', TIMESTAMP '2006-03-12 10:23:05')`,
		`INSERT INTO Routing VALUES
			('m1', 'm3', TIMESTAMP '2006-03-12 23:20:06'),
			('m2', 'm3', TIMESTAMP '2006-02-10 03:34:21')`,
		`INSERT INTO Heartbeat VALUES
			('m1', TIMESTAMP '2006-03-15 14:20:05'),
			('m2', TIMESTAMP '2006-03-14 17:23:00'),
			('m3', TIMESTAMP '2006-03-15 14:40:05')`,
	}
	for _, sql := range fixtures {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("fixture %q: %v", sql, err)
		}
	}
	return db
}

func queryStrings(t *testing.T, db *DB, sql string) []string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	var out []string
	for _, row := range res.Rows {
		var parts []string
		for _, v := range row {
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

func TestPaperQ1SingleRelation(t *testing.T) {
	db := paperDB(t)
	got := queryStrings(t, db, `SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'`)
	if len(got) != 1 || got[0] != "m1" {
		t.Errorf("Q1 = %v, want [m1]", got)
	}
}

func TestPaperQ2Join(t *testing.T) {
	db := paperDB(t)
	got := queryStrings(t, db, `
		SELECT A.mach_id FROM Routing R, Activity A
		WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`)
	if len(got) != 1 || got[0] != "m3" {
		t.Errorf("Q2 = %v, want [m3]", got)
	}
}

func TestSelectStarAndAliases(t *testing.T) {
	db := paperDB(t)
	res, err := db.Query(`SELECT * FROM Activity WHERE value = 'busy'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || res.Columns[0] != "mach_id" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "m2" {
		t.Errorf("rows = %v", res.Rows)
	}
	res, err = db.Query(`SELECT A.mach_id AS machine, A.value state FROM Activity A LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "machine" || res.Columns[1] != "state" {
		t.Errorf("aliased columns = %v", res.Columns)
	}
	if len(res.Rows) != 2 {
		t.Errorf("LIMIT ignored: %d rows", len(res.Rows))
	}
}

func TestAggregateQueries(t *testing.T) {
	db := paperDB(t)
	got := queryStrings(t, db, `SELECT COUNT(*) FROM Activity WHERE value = 'idle'`)
	if got[0] != "2" {
		t.Errorf("COUNT = %v", got)
	}
	got = queryStrings(t, db, `SELECT MIN(recency), MAX(recency) FROM Heartbeat`)
	if got[0] != "2006-03-14 17:23:00,2006-03-15 14:40:05" {
		t.Errorf("MIN/MAX = %v", got)
	}
}

func TestOrderByVariants(t *testing.T) {
	db := paperDB(t)
	got := queryStrings(t, db, `SELECT mach_id FROM Activity ORDER BY event_time DESC`)
	if strings.Join(got, " ") != "m3 m1 m2" {
		t.Errorf("order by time desc = %v", got)
	}
	got = queryStrings(t, db, `SELECT mach_id m FROM Activity ORDER BY m DESC`)
	if strings.Join(got, " ") != "m3 m2 m1" {
		t.Errorf("order by alias = %v", got)
	}
	got = queryStrings(t, db, `SELECT mach_id FROM Activity ORDER BY 1`)
	if strings.Join(got, " ") != "m1 m2 m3" {
		t.Errorf("order by position = %v", got)
	}
}

func TestDistinctAndUnion(t *testing.T) {
	db := paperDB(t)
	got := queryStrings(t, db, `SELECT DISTINCT value FROM Activity ORDER BY value`)
	if strings.Join(got, " ") != "busy idle" {
		t.Errorf("distinct = %v", got)
	}
	got = queryStrings(t, db, `
		SELECT mach_id FROM Activity WHERE value = 'idle'
		UNION SELECT mach_id FROM Routing WHERE neighbor = 'm3'
		ORDER BY mach_id`)
	if strings.Join(got, " ") != "m1 m2 m3" {
		t.Errorf("union = %v", got)
	}
}

func TestUpdateAndDelete(t *testing.T) {
	db := paperDB(t)
	n, err := db.Exec(`UPDATE Heartbeat SET recency = TIMESTAMP '2006-03-16 00:00:00' WHERE sid = 'm2'`)
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	got := queryStrings(t, db, `SELECT recency FROM Heartbeat WHERE sid = 'm2'`)
	if got[0] != "2006-03-16 00:00:00" {
		t.Errorf("after update = %v", got)
	}
	// Full count unchanged (update is delete+insert under MVCC but only one
	// visible version).
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Heartbeat`)
	if got[0] != "3" {
		t.Errorf("count after update = %v", got)
	}
	n, err = db.Exec(`DELETE FROM Activity WHERE value = 'busy'`)
	if err != nil || n != 1 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Activity`)
	if got[0] != "2" {
		t.Errorf("count after delete = %v", got)
	}
}

func TestPrimaryKeyEnforced(t *testing.T) {
	db := paperDB(t)
	if _, err := db.Exec(`INSERT INTO Heartbeat VALUES ('m1', TIMESTAMP '2006-03-16 00:00:00')`); err == nil {
		t.Error("duplicate PK insert should fail")
	}
	// After deleting, the key is insertable again.
	db.MustExec(`DELETE FROM Heartbeat WHERE sid = 'm1'`)
	if _, err := db.Exec(`INSERT INTO Heartbeat VALUES ('m1', TIMESTAMP '2006-03-16 00:00:00')`); err != nil {
		t.Errorf("insert after delete: %v", err)
	}
}

func TestInsertColumnSubsetAndCoercion(t *testing.T) {
	db := paperDB(t)
	// String literal into TIMESTAMP column coerces.
	if _, err := db.Exec(`INSERT INTO Activity (mach_id, value, event_time) VALUES ('m4', 'idle', '2006-03-13 08:00:00')`); err != nil {
		t.Fatalf("coerced insert: %v", err)
	}
	got := queryStrings(t, db, `SELECT event_time FROM Activity WHERE mach_id = 'm4'`)
	if got[0] != "2006-03-13 08:00:00" {
		t.Errorf("coerced value = %v", got)
	}
	// Column subset leaves others NULL.
	if _, err := db.Exec(`INSERT INTO Activity (mach_id) VALUES ('m5')`); err != nil {
		t.Fatalf("subset insert: %v", err)
	}
	res, _ := db.Query(`SELECT value FROM Activity WHERE mach_id = 'm5'`)
	if !res.Rows[0][0].IsNull() {
		t.Errorf("missing column should be NULL, got %v", res.Rows[0][0])
	}
	// Type error rejected.
	if _, err := db.Exec(`INSERT INTO Heartbeat VALUES ('m9', 42)`); err == nil {
		t.Error("int into TIMESTAMP should fail")
	}
}

func TestQuerySnapshotIsolation(t *testing.T) {
	db := paperDB(t)
	snap := db.Snapshot()
	db.MustExec(`INSERT INTO Activity VALUES ('m7', 'idle', TIMESTAMP '2006-03-13 00:00:00')`)
	res, err := db.QueryAt(`SELECT COUNT(*) FROM Activity`, snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("old snapshot sees %v rows", res.Rows[0][0])
	}
	res, _ = db.Query(`SELECT COUNT(*) FROM Activity`)
	if res.Rows[0][0].Int() != 4 {
		t.Errorf("new snapshot sees %v rows", res.Rows[0][0])
	}
}

func TestExplainShowsIndexUse(t *testing.T) {
	db := paperDB(t)
	notes, err := db.ExplainAt(`SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'`, db.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(notes, "index scan") {
		t.Errorf("expected index scan in plan, got:\n%s", notes)
	}
	notes, _ = db.ExplainAt(`SELECT mach_id FROM Activity WHERE value = 'idle'`, db.Snapshot())
	if !strings.Contains(notes, "seq scan") {
		t.Errorf("expected seq scan in plan, got:\n%s", notes)
	}
}

func TestConstantSelect(t *testing.T) {
	db := New()
	got := queryStrings(t, db, `SELECT 1 + 1, 'x'`)
	if len(got) != 1 || got[0] != "2,x" {
		t.Errorf("constant select = %v", got)
	}
}

func TestErrorPaths(t *testing.T) {
	db := paperDB(t)
	bad := []string{
		`SELECT nope FROM Activity`,
		`SELECT mach_id FROM NoSuchTable`,
		`INSERT INTO NoSuchTable VALUES (1)`,
		`UPDATE Activity SET nope = 1`,
		`DELETE FROM NoSuchTable`,
		`CREATE TABLE Activity (x TEXT)`, // duplicate
		`DROP TABLE NoSuchTable`,
		`CREATE INDEX i ON NoSuchTable (x)`,
		`SELECT COUNT(*), mach_id FROM Activity`,     // mixed agg/plain
		`SELECT mach_id FROM Activity a, Activity a`, // dup binding
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
}

func TestResultFormat(t *testing.T) {
	db := paperDB(t)
	res, _ := db.Query(`SELECT mach_id, value FROM Activity WHERE mach_id = 'm1'`)
	out := res.Format()
	for _, want := range []string{"mach_id", "value", "m1", "idle", "(1 rows)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
