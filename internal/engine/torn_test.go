package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Torn-file property tests: a crash can leave any byte-prefix of a file on
// disk (and, for logs, arbitrary garbage in the torn tail). Dumps must
// REJECT every strict prefix — a checkpoint is all-or-nothing — while the
// WAL must SALVAGE every prefix, recovering exactly the complete commits it
// contains and discarding the torn remainder.

// tornDump builds a database with some structural variety and returns its
// TRACDB01 dump bytes.
func tornDump(t *testing.T) []byte {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE Activity (mach_id TEXT, value TEXT, score FLOAT, at TIMESTAMP)`)
	db.MustExec(`CREATE INDEX ia ON Activity (mach_id)`)
	db.MustExec(`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`)
	for i := 0; i < 40; i++ {
		val := fmt.Sprintf("'v%d'", i)
		if i%5 == 0 {
			val = "NULL"
		}
		db.MustExec(fmt.Sprintf(
			`INSERT INTO Activity VALUES ('m%d', %s, %d.5, '2006-03-15 14:%02d:00')`,
			i%7, val, i, i%60))
	}
	db.MustExec(`INSERT INTO Heartbeat VALUES ('m1', '2006-03-15 14:20:05')`)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDumpLoadRejectsEveryPrefix(t *testing.T) {
	data := tornDump(t)
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Fatalf("full dump must load: %v", err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("dump prefix of %d/%d bytes loaded without error", cut, len(data))
		}
	}
}

func TestDirDumpRejectsEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE T (a BIGINT, src TEXT)`)
	for i := 0; i < 20; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T VALUES (%d, 's%d')`, i, i%3))
	}
	if err := db.CheckpointDir(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	dumpPath := filepath.Join(dir, "dump.2")
	data, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(dumpPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if db, err := OpenDir(dir); err == nil {
			db.Close()
			t.Fatalf("v2 dump prefix of %d/%d bytes accepted", cut, len(data))
		}
	}
	// Restoring the full dump restores the database.
	if err := os.WriteFile(dumpPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countRows(t, db2, "T"); got != 20 {
		t.Fatalf("restored dump rows = %d, want 20", got)
	}
}

// replayPrefixRows loads a WAL prefix into a fresh database and returns how
// many T rows came back, asserting they form the exact prefix 0..k-1.
func replayPrefixRows(t *testing.T, path string, data []byte) int {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db := New()
	if err := db.AttachWAL(path); err != nil {
		t.Fatalf("torn tail must be salvaged, not rejected (%d bytes): %v", len(data), err)
	}
	defer db.DetachWAL()
	if _, err := db.Catalog().Get("T"); err != nil {
		return 0 // the DDL commit itself was torn away
	}
	res, err := db.Query(`SELECT a FROM T ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Rows {
		if row[0].Int() != int64(i) {
			t.Fatalf("%d-byte prefix recovered a non-prefix cut: slot %d = %v", len(data), i, row[0])
		}
	}
	return len(res.Rows)
}

func TestWALReplaySalvagesEveryTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.wal")
	db := walDB(t, path)
	db.MustExec(`CREATE TABLE T (a BIGINT)`)
	const commits = 10
	for i := 0; i < commits; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T VALUES (%d)`, i))
	}
	if err := db.DetachWAL(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	torn := filepath.Join(dir, "torn.wal")
	prev := 0
	for cut := 0; cut <= len(data); cut++ {
		k := replayPrefixRows(t, torn, data[:cut])
		if k < prev {
			t.Fatalf("recovered commits regressed from %d to %d at prefix %d", prev, k, cut)
		}
		prev = k
	}
	if prev != commits {
		t.Fatalf("full log recovered %d commits, want %d", prev, commits)
	}
}

func TestWALReplayTruncatesAtMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.wal")
	db := walDB(t, path)
	db.MustExec(`CREATE TABLE T (a BIGINT)`)
	for i := 0; i < 10; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO T VALUES (%d)`, i))
	}
	if err := db.DetachWAL(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped bit ANYWHERE in the record stream must cut recovery at the
	// last commit wholly before it — never replay past a failed CRC, and
	// never reject the whole log.
	torn := filepath.Join(dir, "flip.wal")
	for pos := int(walHeaderSize); pos < len(data); pos += 11 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x20
		k := replayPrefixRows(t, torn, mut)
		// Everything after the flip is discarded, so the flip position
		// bounds the recovered byte range: k can at most cover the commits
		// in data[:pos], which is itself at most what the full log holds.
		kAtPos := replayPrefixRows(t, torn, data[:pos])
		if k > kAtPos {
			t.Fatalf("flip at %d: recovered %d commits, but only %d precede the corruption",
				pos, k, kAtPos)
		}
	}

	// Recovery from a corrupt log leaves a usable, append-able database.
	mut := append([]byte(nil), data...)
	mut[len(data)/2] ^= 0x04
	if err := os.WriteFile(torn, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := walDB(t, torn)
	before := int(countRows(t, db2, "T"))
	db2.MustExec(`INSERT INTO T VALUES (1000)`)
	if err := db2.DetachWAL(); err != nil {
		t.Fatal(err)
	}
	db3 := walDB(t, torn)
	defer db3.DetachWAL()
	if got := int(countRows(t, db3, "T")); got != before+1 {
		t.Fatalf("post-repair append lost: %d rows, want %d", got, before+1)
	}
}
