package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"trac/internal/crashfs"
	"trac/internal/sqlparser"
)

// WAL is a logical write-ahead log: every SQL mutation that commits through
// the engine (Exec autocommits and Batches) is appended as its SQL text,
// with an explicit commit record terminating each transaction. Recovery
// replays complete transactions and truncates a torn tail.
//
// On-disk format (version 2):
//
//	magic "TRACWAL2"
//	records, each:
//	  uint32 LE  n      (1 + payload length; bounded by walMaxRecord)
//	  uint32 LE  crc    (CRC32C of type byte + payload)
//	  byte       type   ('S' statement, 'C' commit)
//	  payload           (the SQL text; empty for commit)
//
// A record that fails to parse — short header, absurd length, checksum
// mismatch, truncated payload — marks the torn tail: everything from the
// last complete commit record onward is discarded AND physically truncated
// on open, so the file never accumulates garbage between the valid prefix
// and new appends. A checksum failure mid-log is treated the same way: the
// log's only durability contract is its valid prefix.
//
// Durability modes: with Sync unset, commits are flushed to the OS but not
// fsynced (simulation workloads). With Sync set, every commit is fsynced
// before the commit call returns — batched across concurrent committers by
// a leader/follower group-commit protocol, so k simultaneous commits cost
// one fsync, not k. A failed fsync poisons the WAL permanently: the first
// error is sticky and every later append or checkpoint reports it, because
// after a failed fsync the kernel may have dropped the dirty pages and the
// file's durable contents are unknowable (the postgres fsyncgate lesson).
//
// Scope: only SQL-level mutations are logged. Direct transaction-manager
// inserts (bulk loaders, session temp tables) and API-level metadata
// changes (SetSourceColumn, domains) bypass the log by design — they belong
// in the checkpoint dump.
type WAL struct {
	mu   sync.Mutex
	fs   crashfs.FS
	f    crashfs.File
	w    *bufio.Writer
	path string
	// Sync forces an fsync before each commit returns (durability over
	// throughput; off by default for simulation workloads). Group commit
	// batches the fsyncs across concurrent committers.
	Sync bool

	// Group-commit state. appended counts commit groups flushed to the OS
	// file; synced counts groups known durable. A committer waits until
	// synced covers its own group, electing itself fsync leader when no
	// sync is in flight; one leader fsync covers every group flushed
	// before it started.
	gmu      sync.Mutex
	gcond    *sync.Cond
	appended uint64
	synced   uint64
	syncing  bool
	perr     error // sticky poison; set on any fsync/write failure
}

const (
	walMagic      = "TRACWAL2"
	walHeaderSize = int64(len(walMagic))
	walMaxRecord  = 1 << 26

	walRecStatement = byte('S')
	walRecCommit    = byte('C')
)

// castagnoli is the CRC32C table shared by the WAL, dump, and segment-file
// codecs.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWALPoisoned marks a WAL that observed an fsync (or write) failure:
// its durable contents are unknowable, so every subsequent append and
// checkpoint fails with this error. Recovery requires reopening the
// database from disk.
var ErrWALPoisoned = errors.New("engine: WAL poisoned by earlier I/O failure")

// AttachWAL replays any complete transactions already in the file at path
// (creating it if absent), truncates its torn tail, and then routes every
// subsequent committed SQL mutation through it. Attach before writing;
// attaching twice is an error.
func (db *DB) AttachWAL(path string) error {
	db.walMu.Lock()
	attached := db.wal != nil
	db.walMu.Unlock()
	if attached {
		return errors.New("engine: WAL already attached")
	}
	w, txns, err := openWAL(db.fsRef(), path)
	if err != nil {
		return err
	}
	// Replay before publishing the WAL pointer: replayed statements run
	// through the normal Exec/Batch paths, which consult the (still-nil)
	// pointer and must not re-log.
	for _, stmts := range txns {
		if err := db.applyReplayed(stmts); err != nil {
			_ = w.Close() // the replay failure is the error that matters
			return fmt.Errorf("engine: WAL replay: %w", err)
		}
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.wal != nil {
		_ = w.Close() // lost the attach race; the duplicate-attach error wins
		return errors.New("engine: WAL already attached")
	}
	db.wal = w
	return nil
}

// DetachWAL stops logging, flushes, fsyncs, and closes the file, reporting
// any error. Detaching when nothing is attached is a no-op.
func (db *DB) DetachWAL() error {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.wal == nil {
		return nil
	}
	w := db.wal
	db.wal = nil
	return w.Close()
}

// openWAL opens (or creates) a WAL file, scans it for complete
// transactions, and truncates the torn tail so appends resume at the end of
// the valid prefix. It returns the transactions to replay.
func openWAL(fsys crashfs.FS, path string) (*WAL, [][]string, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := fsys.Stat(path)
	if err != nil {
		_ = f.Close() // the stat failure is the error that matters
		return nil, nil, err
	}
	size := info.Size()

	var txns [][]string
	switch {
	case size < walHeaderSize:
		// Empty file, or a crash tore the header itself: start fresh.
		if size > 0 {
			if err := f.Truncate(0); err != nil {
				_ = f.Close()
				return nil, nil, err
			}
		}
		if _, err := f.Write([]byte(walMagic)); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	default:
		hdr := make([]byte, walHeaderSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if string(hdr) != walMagic {
			_ = f.Close()
			return nil, nil, fmt.Errorf("engine: %s is not a TRAC WAL (magic %q)", path, hdr)
		}
		var validEnd int64
		txns, validEnd = scanWAL(io.NewSectionReader(f, walHeaderSize, size-walHeaderSize))
		validEnd += walHeaderSize
		if validEnd < size {
			if err := f.Truncate(validEnd); err != nil {
				_ = f.Close()
				return nil, nil, err
			}
		}
	}
	w := &WAL{fs: fsys, f: f, w: bufio.NewWriter(f), path: path}
	w.gcond = sync.NewCond(&w.gmu)
	return w, txns, nil
}

// scanWAL parses framed records from r and groups statements into
// transactions at each commit record. It returns the complete transactions
// and the offset (relative to r) just past the last commit record — the
// point the file should be truncated to. Any malformed record (short
// header, oversized length, CRC mismatch, torn payload) ends the scan: a
// WAL's contract is its longest valid prefix.
func scanWAL(r io.Reader) (txns [][]string, validEnd int64) {
	br := bufio.NewReader(r)
	var (
		off     int64
		pending []string
	)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return txns, validEnd
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n < 1 || n > walMaxRecord {
			return txns, validEnd
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return txns, validEnd
		}
		if crc32.Checksum(body, castagnoli) != sum {
			return txns, validEnd
		}
		off += 8 + int64(n)
		switch body[0] {
		case walRecStatement:
			pending = append(pending, string(body[1:]))
		case walRecCommit:
			if len(pending) > 0 {
				txns = append(txns, pending)
				pending = nil
			}
			validEnd = off
		default:
			return txns, validEnd
		}
	}
}

// writeWALRecord frames one record onto w.
func writeWALRecord(w *bufio.Writer, typ byte, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(payload)))
	crc := crc32.Checksum([]byte{typ}, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// poison records the first I/O failure; later calls keep the original.
func (w *WAL) poison(err error) {
	w.gmu.Lock()
	if w.perr == nil {
		w.perr = fmt.Errorf("%w: %v", ErrWALPoisoned, err)
	}
	w.gmu.Unlock()
	w.gcond.Broadcast()
}

// poisonErr returns the sticky failure, if any.
func (w *WAL) poisonErr() error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	return w.perr
}

// logCommitted appends one committed transaction's statements. Called with
// the statements that actually executed, after the engine commit succeeded.
func (db *DB) logCommitted(stmts []string) error {
	db.walMu.Lock()
	w := db.wal
	db.walMu.Unlock()
	if w == nil || len(stmts) == 0 {
		return nil
	}
	return w.append(stmts)
}

// append writes one transaction (statements + commit record), flushes it to
// the OS, and — in Sync mode — blocks until a group fsync covers it.
func (w *WAL) append(stmts []string) error {
	w.mu.Lock()
	if err := w.poisonErr(); err != nil {
		w.mu.Unlock()
		return err
	}
	for _, s := range stmts {
		if err := writeWALRecord(w.w, walRecStatement, []byte(s)); err != nil {
			w.mu.Unlock()
			w.poison(err)
			return err
		}
	}
	if err := writeWALRecord(w.w, walRecCommit, nil); err != nil {
		w.mu.Unlock()
		w.poison(err)
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.mu.Unlock()
		w.poison(err)
		return err
	}
	w.gmu.Lock()
	w.appended++
	group := w.appended
	w.gmu.Unlock()
	needSync := w.Sync
	w.mu.Unlock()
	if !needSync {
		return nil
	}
	return w.waitSynced(group)
}

// waitSynced blocks until commit group `group` is durable, electing this
// goroutine fsync leader when no sync is in flight. The leader's single
// fsync covers every group flushed before it started — the group-commit
// batching that makes Sync mode cost ~1 fsync per concurrent burst.
func (w *WAL) waitSynced(group uint64) error {
	w.gmu.Lock()
	defer w.gmu.Unlock()
	for w.synced < group && w.perr == nil {
		if w.syncing {
			w.gcond.Wait()
			continue
		}
		w.syncing = true
		target := w.appended // every group ≤ target is already flushed
		w.gmu.Unlock()
		err := w.f.Sync()
		w.gmu.Lock()
		w.syncing = false
		if err != nil {
			if w.perr == nil {
				w.perr = fmt.Errorf("%w: %v", ErrWALPoisoned, err)
			}
		} else if target > w.synced {
			w.synced = target
		}
		w.gcond.Broadcast()
	}
	if w.synced >= group {
		return nil
	}
	return w.perr
}

// Close flushes, fsyncs, and closes the log, reporting the first error
// (including a prior poisoning) instead of discarding it.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	first := w.poisonErr()
	if err := w.w.Flush(); err != nil && first == nil {
		first = err
	}
	if err := w.f.Sync(); err != nil && first == nil {
		first = err
	}
	if err := w.f.Close(); err != nil && first == nil {
		first = err
	}
	w.f = nil
	return first
}

// Checkpoint writes a full dump to dumpPath (atomically and durably: temp
// file + fsync + rename + parent-directory fsync) and then truncates the
// WAL: the pair (dump, empty log) is equivalent to the pre-checkpoint (old
// dump, long log), but recovery becomes O(data) instead of O(history).
//
// The ordering is the crash-safety invariant: the log shrinks only after
// the dump that subsumes it is durable. One narrow window remains in this
// path-based API — a crash after the dump rename but before the truncate is
// durable replays the old log into the new dump, duplicating rows. The
// directory layout (CheckpointDir/OpenDir) closes it by switching to a
// fresh epoch-numbered WAL file instead of truncating in place.
func (db *DB) Checkpoint(dumpPath string) error {
	db.walMu.Lock()
	w := db.wal
	db.walMu.Unlock()
	if w == nil {
		return errors.New("engine: no WAL attached")
	}
	// ckptMu excludes in-flight commit+log pairs: a transaction that
	// engine-committed before the dump snapshot but WAL-appended after the
	// truncate would otherwise replay twice.
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.poisonErr(); err != nil {
		return err
	}
	if err := db.SaveFile(dumpPath); err != nil {
		return err
	}
	if err := w.f.Truncate(walHeaderSize); err != nil {
		w.poison(err)
		return err
	}
	w.w.Reset(w.f) // O_APPEND: subsequent writes land after the header
	if err := w.f.Sync(); err != nil {
		w.poison(err)
		return err
	}
	return nil
}

// applyReplayed executes one recovered transaction.
func (db *DB) applyReplayed(stmts []string) error {
	if len(stmts) == 0 {
		return nil
	}
	// DDL executes standalone; DML groups into one atomic batch. A WAL
	// transaction is either one DDL statement or a group of DML.
	first, err := sqlparser.Parse(stmts[0])
	if err != nil {
		return err
	}
	switch first.(type) {
	case *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt:
		b := db.BeginBatch()
		defer b.Abort()
		for _, s := range stmts {
			if _, err := b.Exec(s); err != nil {
				return err
			}
		}
		return b.Commit()
	default:
		for _, s := range stmts {
			if _, err := db.Exec(s); err != nil {
				return err
			}
		}
		return nil
	}
}
