package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"trac/internal/sqlparser"
)

// WAL is a logical write-ahead log: every SQL mutation that commits through
// the engine (Exec autocommits and Batches) is appended as its SQL text,
// with an explicit commit marker terminating each transaction. Recovery
// replays complete transactions and discards a torn tail.
//
// The intended durability story is checkpoint + log: SaveFile writes a
// snapshot-consistent dump, Checkpoint additionally truncates the log, and
// AttachWAL replays whatever the log holds before new writes append. For a
// monitoring database this covers the loader path exactly: sniffers write
// through Batch, so each event batch (rows + heartbeat advance) is one
// atomic WAL transaction.
//
// Scope: only SQL-level mutations are logged. Direct transaction-manager
// inserts (bulk loaders, session temp tables) and API-level metadata
// changes (SetSourceColumn, domains) bypass the log by design — they belong
// in the checkpoint dump.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	// Sync forces an fsync after every commit marker (durability over
	// throughput; off by default for simulation workloads).
	Sync bool
}

// commitMarker terminates one transaction's records.
const commitMarker = "\x00COMMIT"

// AttachWAL replays any complete transactions already in the file at path
// (creating it if absent) and then routes every subsequent committed SQL
// mutation through it. Attach before writing; attaching twice is an error.
func (db *DB) AttachWAL(path string) error {
	db.walMu.Lock()
	attached := db.wal != nil
	db.walMu.Unlock()
	if attached {
		return errors.New("engine: WAL already attached")
	}
	// Replay outside the lock: replayed statements run through the normal
	// Exec/Batch paths, which consult the (still-nil) WAL pointer.
	if err := db.replayWAL(path); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.wal != nil {
		f.Close()
		return errors.New("engine: WAL already attached")
	}
	db.wal = &WAL{f: f, w: bufio.NewWriter(f), path: path}
	return nil
}

// DetachWAL stops logging and closes the file.
func (db *DB) DetachWAL() error {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.wal == nil {
		return nil
	}
	w := db.wal
	db.wal = nil
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Checkpoint writes a full dump to dumpPath and truncates the WAL: the pair
// (dump, empty log) is equivalent to the pre-checkpoint (old dump, long
// log), but recovery becomes O(data) instead of O(history).
func (db *DB) Checkpoint(dumpPath string) error {
	db.walMu.Lock()
	w := db.wal
	db.walMu.Unlock()
	if w == nil {
		return errors.New("engine: no WAL attached")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// The dump snapshot is taken under the WAL lock, so no commit can slip
	// between the dump and the truncation.
	if err := db.SaveFile(dumpPath); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	return w.f.Sync()
}

// logCommitted appends one committed transaction's statements. Called with
// the statements that actually executed, after the engine commit succeeded.
func (db *DB) logCommitted(stmts []string) error {
	db.walMu.Lock()
	w := db.wal
	db.walMu.Unlock()
	if w == nil || len(stmts) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range stmts {
		if err := writeWALRecord(w.w, s); err != nil {
			return err
		}
	}
	if err := writeWALRecord(w.w, commitMarker); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if w.Sync {
		return w.f.Sync()
	}
	return nil
}

func writeWALRecord(w *bufio.Writer, s string) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	if _, err := w.Write(buf[:n]); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// replayWAL applies every complete transaction found at path. A torn tail
// (incomplete record or missing commit marker) is discarded, matching
// crash-recovery semantics.
func (db *DB) replayWAL(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)

	var pending []string
	for {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			break // clean EOF or torn length: discard pending
		}
		if n > 1<<26 {
			return fmt.Errorf("engine: corrupt WAL record length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			break // torn record: discard pending
		}
		rec := string(buf)
		if rec == commitMarker {
			if err := db.applyReplayed(pending); err != nil {
				return fmt.Errorf("engine: WAL replay: %w", err)
			}
			pending = pending[:0]
			continue
		}
		pending = append(pending, rec)
	}
	return nil
}

// applyReplayed executes one recovered transaction.
func (db *DB) applyReplayed(stmts []string) error {
	if len(stmts) == 0 {
		return nil
	}
	// DDL executes standalone; DML groups into one atomic batch. A WAL
	// transaction is either one DDL statement or a group of DML.
	first, err := sqlparser.Parse(stmts[0])
	if err != nil {
		return err
	}
	switch first.(type) {
	case *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt:
		b := db.BeginBatch()
		defer b.Abort()
		for _, s := range stmts {
			if _, err := b.Exec(s); err != nil {
				return err
			}
		}
		return b.Commit()
	default:
		for _, s := range stmts {
			if _, err := db.Exec(s); err != nil {
				return err
			}
		}
		return nil
	}
}
