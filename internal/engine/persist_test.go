package engine

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"trac/internal/types"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := paperDB(t)
	// Add a check, a domain, and some MVCC churn (update + delete) so the
	// dump must compact history.
	if err := db.AddCheck("Routing", `neighbor <> mach_id`); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`UPDATE Heartbeat SET recency = '2006-03-16 00:00:00' WHERE sid = 'm1'`)
	db.MustExec(`INSERT INTO Activity VALUES ('m9', 'idle', '2006-03-13 00:00:00')`)
	db.MustExec(`DELETE FROM Activity WHERE mach_id = 'm9'`)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same visible data.
	for _, q := range []string{
		`SELECT COUNT(*) FROM Activity`,
		`SELECT COUNT(*) FROM Routing`,
		`SELECT COUNT(*) FROM Heartbeat`,
		`SELECT recency FROM Heartbeat WHERE sid = 'm1'`,
		`SELECT mach_id FROM Activity WHERE value = 'idle' ORDER BY mach_id`,
	} {
		a, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := db2.Query(q)
		if err != nil {
			t.Fatalf("loaded DB query %q: %v", q, err)
		}
		if a.Format() != b.Format() {
			t.Errorf("query %q differs:\noriginal:\n%s\nloaded:\n%s", q, a.Format(), b.Format())
		}
	}

	// MVCC history was compacted: loaded Activity heap has exactly the
	// visible versions (3), not the insert+delete churn.
	act2, _ := db2.Catalog().Get("Activity")
	if act2.NumVersions() != 3 {
		t.Errorf("loaded heap has %d versions, want 3 (compacted)", act2.NumVersions())
	}

	// Metadata survived: source column, checks, indexes, PK.
	if act2.Schema.SourceColumn != -1 {
		// paperDB does not set a source column on Activity in the engine
		// fixture; adjust if it ever does.
		t.Logf("source column = %d", act2.Schema.SourceColumn)
	}
	rout2, _ := db2.Catalog().Get("Routing")
	if len(rout2.Schema.Checks) != 1 {
		t.Errorf("checks lost: %d", len(rout2.Schema.Checks))
	}
	if _, err := db2.Exec(`INSERT INTO Routing VALUES ('mX', 'mX', '2006-03-16 00:00:00')`); err == nil {
		t.Error("check not enforced after load")
	}
	if act2.Index(0) == nil {
		t.Error("Activity index lost")
	}
	hb2, _ := db2.Catalog().Get("Heartbeat")
	if !hb2.Schema.Columns[0].PrimaryKey {
		t.Error("primary key flag lost")
	}
	if _, err := db2.Exec(`INSERT INTO Heartbeat VALUES ('m1', '2006-03-17 00:00:00')`); err == nil {
		t.Error("PK not enforced after load")
	}

	// The loaded DB keeps working: inserts, updates, queries.
	db2.MustExec(`INSERT INTO Activity VALUES ('m7', 'busy', '2006-03-14 00:00:00')`)
	res, _ := db2.Query(`SELECT COUNT(*) FROM Activity`)
	if res.Rows[0][0].Int() != 4 {
		t.Errorf("post-load insert: %v", res.Rows[0][0])
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := paperDB(t)
	path := filepath.Join(t.TempDir(), "trac.dump")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := db2.Query(`SELECT COUNT(*) FROM Heartbeat`)
	if res.Rows[0][0].Int() != 3 {
		t.Errorf("rows = %v", res.Rows[0][0])
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("NOTADUMP")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Load(strings.NewReader("TRACDB01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")); err == nil {
		t.Error("corrupt table count should fail")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
}

func TestSaveIsSnapshotConsistent(t *testing.T) {
	// Concurrent writers during Save must not tear the dump: every table is
	// written under one snapshot taken at the start.
	db := paperDB(t)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			b := db.BeginBatch()
			b.Exec(`INSERT INTO Activity VALUES ('mw', 'busy', '2006-03-17 00:00:00')`)
			b.Exec(`UPDATE Heartbeat SET recency = '2006-03-17 00:00:00' WHERE sid = 'm2'`)
			b.Commit()
			i++
		}
	}()
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatal(err)
		}
		db2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Heartbeat must still have exactly 3 rows (updates never add).
		res, _ := db2.Query(`SELECT COUNT(*) FROM Heartbeat`)
		if res.Rows[0][0].Int() != 3 {
			t.Fatalf("torn dump: %v heartbeat rows", res.Rows[0][0])
		}
	}
	close(stop)
	<-done
}

func TestPersistAllValueKindsAndDomains(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE K (b BOOLEAN, i BIGINT, f DOUBLE, s TEXT, ts TIMESTAMP)`)
	db.MustExec(`INSERT INTO K VALUES (TRUE, -42, 2.5, 'it''s', '2006-03-15 14:20:05')`)
	db.MustExec(`INSERT INTO K VALUES (FALSE, 9223372036854775807, -0.125, '', '1970-01-01 00:00:00')`)
	db.MustExec(`INSERT INTO K (i) VALUES (1)`) // NULLs in every other column

	// Domains of every kind on the schema.
	tbl, _ := db.Catalog().Get("K")
	tbl.Schema.Columns[3].Domain = types.FiniteStringDomain("", "it's", "x")
	rng, err := types.IntRangeDomain(-100, 9223372036854775807)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Schema.Columns[1].Domain = rng

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.Query(`SELECT b, i, f, s, ts FROM K ORDER BY i`)
	b, err := db2.Query(`SELECT b, i, f, s, ts FROM K ORDER BY i`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Errorf("value round trip differs:\n%s\nvs\n%s", a.Format(), b.Format())
	}
	tbl2, _ := db2.Catalog().Get("K")
	if tbl2.Schema.Columns[3].Domain.Kind != types.DomainFinite {
		t.Error("finite domain lost")
	}
	if tbl2.Schema.Columns[1].Domain.Kind != types.DomainIntRange {
		t.Error("int-range domain lost")
	}
	if !tbl2.Schema.Columns[3].Domain.Contains(types.NewString("it's")) {
		t.Error("finite domain members lost")
	}
}

func TestSaveFileErrorPaths(t *testing.T) {
	db := New()
	if err := db.SaveFile("/no/such/dir/x.dump"); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestAccessors(t *testing.T) {
	db := New()
	if db.Manager() == nil || db.Planner() == nil {
		t.Error("accessors returned nil")
	}
	sess := db.NewSession()
	if sess.DB() != db {
		t.Error("Session.DB() wrong")
	}
	sess.Close()
}

func TestCoerceToColumnMore(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE C (i BIGINT, f DOUBLE, b BOOLEAN)`)
	// Float literal with integral value into BIGINT.
	if _, err := db.Exec(`INSERT INTO C VALUES (3.0, 2, TRUE)`); err != nil {
		t.Fatalf("integral float into BIGINT: %v", err)
	}
	// Non-integral float into BIGINT rejected.
	if _, err := db.Exec(`INSERT INTO C VALUES (3.5, 2, TRUE)`); err == nil {
		t.Error("non-integral float into BIGINT should fail")
	}
	// Bool into BIGINT rejected.
	if _, err := db.Exec(`INSERT INTO C VALUES (TRUE, 2, TRUE)`); err == nil {
		t.Error("bool into BIGINT should fail")
	}
	res, _ := db.Query(`SELECT i, f FROM C`)
	if res.Rows[0][0].Int() != 3 || res.Rows[0][1].Float() != 2 {
		t.Errorf("coerced row = %v", res.Rows[0])
	}
}
