// Package engine is the top of the database substrate: it owns the catalog
// and transaction manager, executes SQL statements end to end, and manages
// the session temp tables the recency reporter materializes its results
// into (the paper's sys_temp_* tables).
package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"trac/internal/crashfs"
	"trac/internal/exec"
	"trac/internal/planner"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/txn"
	"trac/internal/types"
)

// DB is an embedded database instance.
type DB struct {
	catalog   *storage.Catalog
	mgr       *txn.Manager
	planner   *planner.Planner
	planCache *PlanCache
	tempSeq   atomic.Uint64

	walMu sync.Mutex
	wal   *WAL

	// ckptMu serializes checkpoints against in-flight commit+WAL-append
	// pairs: committers hold it shared across (engine commit, log append),
	// checkpoints hold it exclusively across (dump snapshot, log truncate),
	// so no transaction can land on one side of the snapshot and the other
	// side of the truncate.
	ckptMu sync.RWMutex

	// fsys routes all durability I/O (WAL, dumps, segment files); nil means
	// the real filesystem. Crash tests inject a crashfs.Mem here.
	fsys crashfs.FS

	// dir is set when the database was opened via OpenDir and records the
	// durable directory CheckpointDir writes into.
	dir   string
	epoch uint64
}

// fsRef returns the filesystem all durability I/O goes through.
func (db *DB) fsRef() crashfs.FS {
	if db.fsys == nil {
		return crashfs.OS{}
	}
	return db.fsys
}

// New creates an empty database.
func New() *DB {
	cat := storage.NewCatalog()
	return &DB{
		catalog:   cat,
		mgr:       txn.NewManager(),
		planner:   planner.New(cat),
		planCache: NewPlanCache(0),
	}
}

// Catalog exposes the table catalog (schema registration, domains, source
// columns).
func (db *DB) Catalog() *storage.Catalog { return db.catalog }

// Manager exposes the transaction manager.
func (db *DB) Manager() *txn.Manager { return db.mgr }

// Planner exposes the planner (used by the recency generator to inspect
// plans and by ablation benchmarks).
func (db *DB) Planner() *planner.Planner { return db.planner }

// PlanCache exposes the plan/prepared-report cache. The recency reporter
// stores report.Prepared objects here; the engine itself caches parsed ASTs.
func (db *DB) PlanCache() *PlanCache { return db.planCache }

// CatalogVersion returns the schema version counter used to tag cache
// entries. It advances on DDL and CHECK-constraint changes, NOT on session
// temp-table churn (see storage.Catalog).
func (db *DB) CatalogVersion() uint64 { return db.catalog.Version() }

// Snapshot returns a read snapshot at the current commit horizon. A user
// query and its recency query are both run under one such snapshot to meet
// the paper's consistency requirement.
func (db *DB) Snapshot() txn.Snapshot { return db.mgr.ReadSnapshot() }

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Rows    [][]types.Value
	// Parallel is the plan's parallel scan degree (1 = single-threaded).
	Parallel int
	// Vectorized reports whether the plan executed batch-at-a-time.
	Vectorized bool
}

// Format renders the result as an aligned text table (psql-like), used by
// the shell and examples.
func (r *Result) Format() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "%-*s", widths[i], c)
	}
	sb.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString(" | ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "(%d rows)\n", len(r.Rows))
	if r.Parallel > 1 {
		fmt.Fprintf(&sb, "(parallel degree %d)\n", r.Parallel)
	}
	if r.Vectorized {
		sb.WriteString("(vectorized)\n")
	}
	return sb.String()
}

// Query parses and runs a SELECT at the current commit horizon.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryAt(sql, db.Snapshot())
}

// QueryAt parses and runs a SELECT under a caller-provided snapshot.
func (db *DB) QueryAt(sql string, snap txn.Snapshot) (*Result, error) {
	sel, err := db.parseSelectCached(sql)
	if err != nil {
		return nil, err
	}
	return db.QueryStmtAt(sel, snap)
}

// parseSelectCached memoizes SELECT parsing in the plan cache. Parsed ASTs
// are catalog-independent (name resolution happens at plan time), so entries
// are tagged with version 0 and survive DDL.
func (db *DB) parseSelectCached(sql string) (*sqlparser.SelectStmt, error) {
	key := "ast:" + NormalizeSQL(sql)
	if v, ok := db.planCache.Get(key, 0); ok {
		return v.(*sqlparser.SelectStmt), nil
	}
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	db.planCache.Put(key, 0, sel)
	return sel, nil
}

// ParseSelect exposes the memoized SELECT parse to callers that split
// planning from execution themselves (the shard router builds per-shard
// statements from one parsed AST). Same cache, same semantics as Query.
func (db *DB) ParseSelect(sql string) (*sqlparser.SelectStmt, error) {
	return db.parseSelectCached(sql)
}

// QueryStmtAt runs an already-parsed SELECT under a snapshot.
func (db *DB) QueryStmtAt(sel *sqlparser.SelectStmt, snap txn.Snapshot) (*Result, error) {
	plan, err := db.planner.PlanSelect(sel, snap)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Drain(plan.Root)
	if err != nil {
		return nil, err
	}
	parallel := plan.Parallel
	if parallel < 1 {
		parallel = 1
	}
	return &Result{Columns: plan.Columns, Rows: rows, Parallel: parallel, Vectorized: plan.Vectorized}, nil
}

// ExplainAt plans a SELECT and returns the planner's notes without running
// it.
func (db *DB) ExplainAt(sql string, snap txn.Snapshot) (string, error) {
	sel, err := db.parseSelectCached(sql)
	if err != nil {
		return "", err
	}
	plan, err := db.planner.PlanSelect(sel, snap)
	if err != nil {
		return "", err
	}
	return plan.Describe(), nil
}

// Exec parses and executes any statement. For SELECT it returns the number
// of result rows; for DML the number of affected rows; for DDL zero.
func (db *DB) Exec(sql string) (int, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, err
	}
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		res, err := db.QueryStmtAt(s, db.Snapshot())
		if err != nil {
			return 0, err
		}
		return len(res.Rows), nil
	case *sqlparser.InsertStmt:
		return db.loggedAutocommit(s, func(tx *txn.Txn) (int, error) { return db.execInsert(s, tx) })
	case *sqlparser.UpdateStmt:
		return db.loggedAutocommit(s, func(tx *txn.Txn) (int, error) { return db.execUpdate(s, tx) })
	case *sqlparser.DeleteStmt:
		return db.loggedAutocommit(s, func(tx *txn.Txn) (int, error) { return db.execDelete(s, tx) })
	// DDL cases hold the checkpoint lock shared across the apply+log pair
	// (see DB.ckptMu) so a concurrent checkpoint cannot split them.
	case *sqlparser.CreateTableStmt:
		db.ckptMu.RLock()
		defer db.ckptMu.RUnlock()
		if err := db.execCreateTable(s); err != nil {
			return 0, err
		}
		db.catalog.BumpVersion()
		return 0, db.logCommitted([]string{s.SQL()})
	case *sqlparser.CreateIndexStmt:
		db.ckptMu.RLock()
		defer db.ckptMu.RUnlock()
		tbl, err := db.catalog.Get(s.Table)
		if err != nil {
			return 0, err
		}
		if err := tbl.CreateIndex(s.Column); err != nil {
			return 0, err
		}
		db.catalog.BumpVersion()
		return 0, db.logCommitted([]string{s.SQL()})
	case *sqlparser.DropTableStmt:
		db.ckptMu.RLock()
		defer db.ckptMu.RUnlock()
		if err := db.catalog.Drop(s.Name); err != nil {
			return 0, err
		}
		db.catalog.BumpVersion()
		return 0, db.logCommitted([]string{s.SQL()})
	case *sqlparser.AnalyzeStmt:
		// Statistics are derived state: not WAL-logged.
		return 0, db.execAnalyze(s)
	default:
		return 0, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// MustExec executes a statement and panics on error; it is intended for
// tests and fixtures.
func (db *DB) MustExec(sql string) int {
	n, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("engine: MustExec(%q): %v", sql, err))
	}
	return n
}

func (db *DB) execCreateTable(s *sqlparser.CreateTableStmt) error {
	cols := make([]storage.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = storage.Column{Name: c.Name, Kind: c.Type, PrimaryKey: c.PrimaryKey}
	}
	schema, err := storage.NewSchema(cols)
	if err != nil {
		return err
	}
	tbl := storage.NewTable(s.Name, schema)
	// Validate CHECK expressions against the table's own columns before
	// registering them.
	layout := exec.NewLayout([]exec.Binding{{Name: s.Name, Table: tbl}})
	for _, ck := range s.Checks {
		if _, err := exec.Compile(ck.Expr, layout); err != nil {
			return fmt.Errorf("engine: CHECK constraint: %w", err)
		}
		schema.Checks = append(schema.Checks, ck.Expr)
	}
	if err := db.catalog.Create(tbl); err != nil {
		return err
	}
	// Primary key columns get an index automatically (it also backs the
	// uniqueness check on insert).
	for _, c := range s.Columns {
		if c.PrimaryKey {
			if err := tbl.CreateIndex(c.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddCheck registers a CHECK constraint on an existing table. Existing rows
// are validated against it.
func (db *DB) AddCheck(table, exprSQL string) error {
	tbl, err := db.catalog.Get(table)
	if err != nil {
		return err
	}
	e, err := sqlparser.ParseExpr(exprSQL)
	if err != nil {
		return err
	}
	layout := exec.NewLayout([]exec.Binding{{Name: tbl.Name, Table: tbl}})
	ev, err := exec.Compile(e, layout)
	if err != nil {
		return err
	}
	snap := db.Snapshot()
	for _, r := range tbl.Rows() {
		if !snap.Visible(r) {
			continue
		}
		v, err := ev(r.Values)
		if err != nil {
			return err
		}
		if v.Kind() == types.KindBool && !v.Bool() {
			return fmt.Errorf("engine: existing row violates CHECK (%s)", exprSQL)
		}
	}
	tbl.Schema.Checks = append(tbl.Schema.Checks, e)
	// CHECK constraints shape generated recency plans (§3.4 constraint
	// exploitation), so cached plans must not survive this.
	db.catalog.BumpVersion()
	return nil
}

// TableChecks returns a table's CHECK constraint expressions.
func TableChecks(tbl *storage.Table) []sqlparser.Expr {
	out := make([]sqlparser.Expr, 0, len(tbl.Schema.Checks))
	for _, c := range tbl.Schema.Checks {
		if e, ok := c.(sqlparser.Expr); ok {
			out = append(out, e)
		}
	}
	return out
}

// enforceChecks rejects a row that makes any CHECK constraint FALSE
// (UNKNOWN passes, per SQL semantics).
func (db *DB) enforceChecks(tbl *storage.Table, values []types.Value) error {
	if len(tbl.Schema.Checks) == 0 {
		return nil
	}
	layout := exec.NewLayout([]exec.Binding{{Name: tbl.Name, Table: tbl}})
	for _, c := range TableChecks(tbl) {
		ev, err := exec.Compile(c, layout)
		if err != nil {
			return err
		}
		v, err := ev(values)
		if err != nil {
			return err
		}
		if v.Kind() == types.KindBool && !v.Bool() {
			return fmt.Errorf("engine: row violates CHECK (%s) on table %s", c.SQL(), tbl.Name)
		}
	}
	return nil
}

// loggedAutocommit runs one DML statement in its own transaction and, on
// success, appends it to the WAL (when attached). The checkpoint lock is
// held shared across the commit+append pair (see DB.ckptMu).
func (db *DB) loggedAutocommit(stmt sqlparser.Statement, fn func(tx *txn.Txn) (int, error)) (int, error) {
	db.ckptMu.RLock()
	defer db.ckptMu.RUnlock()
	n, err := db.autocommit(fn)
	if err != nil {
		return n, err
	}
	if err := db.logCommitted([]string{stmt.SQL()}); err != nil {
		return n, fmt.Errorf("%w: %v", ErrWALAppend, err)
	}
	return n, nil
}

// autocommit runs one DML statement in its own transaction.
func (db *DB) autocommit(fn func(tx *txn.Txn) (int, error)) (int, error) {
	tx := db.mgr.Begin()
	n, err := fn(tx)
	if err != nil {
		tx.Abort()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}

func (db *DB) execInsert(s *sqlparser.InsertStmt, tx *txn.Txn) (int, error) {
	tbl, err := db.catalog.Get(s.Table)
	if err != nil {
		return 0, err
	}
	schema := tbl.Schema
	// Map statement columns to schema positions.
	var colIdx []int
	if len(s.Columns) == 0 {
		colIdx = make([]int, schema.NumColumns())
		for i := range colIdx {
			colIdx[i] = i
		}
	} else {
		colIdx = make([]int, len(s.Columns))
		for i, name := range s.Columns {
			ci := schema.ColumnIndex(name)
			if ci < 0 {
				return 0, fmt.Errorf("engine: table %s has no column %q", tbl.Name, name)
			}
			colIdx[i] = ci
		}
	}

	emptyLayout := exec.NewLayout(nil)
	for _, row := range s.Rows {
		if len(row) != len(colIdx) {
			return 0, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(row), len(colIdx))
		}
		values := make([]types.Value, schema.NumColumns())
		for i := range values {
			values[i] = types.Null
		}
		for i, e := range row {
			ev, err := exec.Compile(e, emptyLayout)
			if err != nil {
				return 0, err
			}
			v, err := ev(nil)
			if err != nil {
				return 0, err
			}
			ci := colIdx[i]
			v, err = coerceToColumn(v, schema.Columns[ci])
			if err != nil {
				return 0, fmt.Errorf("engine: column %s: %w", schema.Columns[ci].Name, err)
			}
			values[ci] = v
		}
		if err := db.enforceChecks(tbl, values); err != nil {
			return 0, err
		}
		if err := db.checkPrimaryKey(tbl, values, tx); err != nil {
			return 0, err
		}
		if err := tx.InsertRow(tbl, storage.NewRow(values, 0)); err != nil {
			return 0, err
		}
	}
	return len(s.Rows), nil
}

// checkPrimaryKey rejects an insert that would duplicate a visible primary
// key value.
func (db *DB) checkPrimaryKey(tbl *storage.Table, values []types.Value, tx *txn.Txn) error {
	for ci, col := range tbl.Schema.Columns {
		if !col.PrimaryKey {
			continue
		}
		idx := tbl.Index(ci)
		if idx == nil {
			continue
		}
		for _, r := range idx.Lookup(values[ci]) {
			if tx.Snapshot().Visible(r) {
				return fmt.Errorf("engine: duplicate primary key %s in table %s",
					values[ci], tbl.Name)
			}
		}
	}
	return nil
}

// matchRows finds visible rows of tbl satisfying where (index-assisted when
// possible).
func (db *DB) matchRows(tbl *storage.Table, where sqlparser.Expr, snap txn.Snapshot) ([]*storage.Row, error) {
	layout := exec.NewLayout([]exec.Binding{{Name: tbl.Name, Table: tbl}})
	var filter exec.Evaluator
	if where != nil {
		var err error
		filter, err = exec.Compile(where, layout)
		if err != nil {
			return nil, err
		}
	}
	var candidates []*storage.Row
	if col, keys, ok := planner.EqualityProbe(tbl, where); ok {
		idx := tbl.Index(col)
		for _, k := range keys {
			candidates = append(candidates, idx.Lookup(k)...)
		}
	} else {
		candidates = tbl.Rows()
	}
	var out []*storage.Row
	for _, r := range candidates {
		if !snap.Visible(r) {
			continue
		}
		ok, err := exec.EvalPredicate(filter, r.Values)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func (db *DB) execUpdate(s *sqlparser.UpdateStmt, tx *txn.Txn) (int, error) {
	tbl, err := db.catalog.Get(s.Table)
	if err != nil {
		return 0, err
	}
	layout := exec.NewLayout([]exec.Binding{{Name: tbl.Name, Table: tbl}})
	type setter struct {
		col int
		ev  exec.Evaluator
	}
	setters := make([]setter, len(s.Set))
	for i, a := range s.Set {
		ci := tbl.Schema.ColumnIndex(a.Column)
		if ci < 0 {
			return 0, fmt.Errorf("engine: table %s has no column %q", tbl.Name, a.Column)
		}
		ev, err := exec.Compile(a.Value, layout)
		if err != nil {
			return 0, err
		}
		setters[i] = setter{col: ci, ev: ev}
	}

	matched, err := db.matchRows(tbl, s.Where, tx.Snapshot())
	if err != nil {
		return 0, err
	}
	for _, old := range matched {
		newVals := make([]types.Value, len(old.Values))
		copy(newVals, old.Values)
		for _, st := range setters {
			v, err := st.ev(old.Values)
			if err != nil {
				return 0, err
			}
			v, err = coerceToColumn(v, tbl.Schema.Columns[st.col])
			if err != nil {
				return 0, err
			}
			newVals[st.col] = v
		}
		if err := db.enforceChecks(tbl, newVals); err != nil {
			return 0, err
		}
		if err := tx.Delete(old); err != nil {
			return 0, err
		}
		if err := tx.InsertRow(tbl, storage.NewRow(newVals, 0)); err != nil {
			return 0, err
		}
	}
	return len(matched), nil
}

func (db *DB) execDelete(s *sqlparser.DeleteStmt, tx *txn.Txn) (int, error) {
	tbl, err := db.catalog.Get(s.Table)
	if err != nil {
		return 0, err
	}
	matched, err := db.matchRows(tbl, s.Where, tx.Snapshot())
	if err != nil {
		return 0, err
	}
	for _, r := range matched {
		if err := tx.Delete(r); err != nil {
			return 0, err
		}
	}
	return len(matched), nil
}

// coerceToColumn adapts a literal value to a column's kind (string →
// timestamp, int → float) and rejects clearly mistyped values.
// CoerceToColumn exposes the engine's insert-time coercion rules. The shard
// router hashes partition keys on the value actually stored, so its routing
// must coerce exactly the way execInsert does.
func CoerceToColumn(v types.Value, col storage.Column) (types.Value, error) {
	return coerceToColumn(v, col)
}

func coerceToColumn(v types.Value, col storage.Column) (types.Value, error) {
	if v.IsNull() || v.Kind() == col.Kind {
		return v, nil
	}
	switch {
	case col.Kind == types.KindTime && v.Kind() == types.KindString:
		ts, err := types.ParseTime(v.Str())
		if err != nil {
			return types.Null, err
		}
		return types.NewTime(ts), nil
	case col.Kind == types.KindFloat && v.Kind() == types.KindInt:
		return types.NewFloat(float64(v.Int())), nil
	case col.Kind == types.KindInt && v.Kind() == types.KindFloat:
		f := v.Float()
		if f != float64(int64(f)) {
			return types.Null, fmt.Errorf("non-integral value %v for BIGINT column", f)
		}
		return types.NewInt(int64(f)), nil
	default:
		return types.Null, fmt.Errorf("cannot store %s into %s column", v.Kind(), col.Kind)
	}
}
