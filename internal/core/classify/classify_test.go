package classify

import (
	"testing"

	"trac/internal/core/dnf"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/types"
)

func mkTable(t *testing.T, name, srcCol string, cols ...string) *storage.Table {
	t.Helper()
	defs := make([]storage.Column, len(cols))
	for i, c := range cols {
		kind := types.KindString
		if c == "event_time" {
			kind = types.KindTime
		}
		defs[i] = storage.Column{Name: c, Kind: kind}
	}
	s, err := storage.NewSchema(defs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetSourceColumn(srcCol); err != nil {
		t.Fatal(err)
	}
	return storage.NewTable(name, s)
}

func terms(t *testing.T, src string) []sqlparser.Expr {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dnf.Convert(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 {
		t.Fatalf("expected one conjunct, got %d", len(d))
	}
	return d[0]
}

func sqls(exprs []sqlparser.Expr) []string {
	out := make([]string, len(exprs))
	for i, e := range exprs {
		out[i] = e.SQL()
	}
	return out
}

func TestSingleRelationClassification(t *testing.T) {
	// Paper §4.1.1: Q1 over Activity(mach_id [source], value, event_time).
	act := mkTable(t, "Activity", "mach_id", "mach_id", "value", "event_time")
	rels := []Relation{{Binding: "Activity", Table: act}}
	cls, err := Conjunct(terms(t, "mach_id IN ('m1', 'm2') AND value = 'idle'"), rels)
	if err != nil {
		t.Fatal(err)
	}
	pr := cls.Relations[0]
	if len(pr.Ps) != 1 || pr.Ps[0].SQL() != "mach_id IN ('m1', 'm2')" {
		t.Errorf("Ps = %v", sqls(pr.Ps))
	}
	if len(pr.Pr) != 1 || pr.Pr[0].SQL() != "value = 'idle'" {
		t.Errorf("Pr = %v", sqls(pr.Pr))
	}
	if len(pr.Pm)+len(pr.Js)+len(pr.Jrm)+len(pr.Po) != 0 {
		t.Errorf("unexpected extra classes: %+v", pr)
	}
}

func TestMixedPredicate(t *testing.T) {
	act := mkTable(t, "Activity", "mach_id", "mach_id", "value", "event_time")
	rels := []Relation{{Binding: "A", Table: act}}
	cls, err := Conjunct(terms(t, "A.mach_id = A.value"), rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Relations[0].Pm) != 1 {
		t.Errorf("mixed predicate not detected: %+v", cls.Relations[0])
	}
}

func TestPaperQ2Classification(t *testing.T) {
	// §4.1.2: Routing R joins Activity A.
	// R.mach_id = 'm1'      -> Ps for R, Po for A
	// A.value = 'idle'      -> Pr for A, Po for R
	// R.neighbor = A.mach_id-> Jrm for R (regular col), Js for A (source col)
	rout := mkTable(t, "Routing", "mach_id", "mach_id", "neighbor", "event_time")
	act := mkTable(t, "Activity", "mach_id", "mach_id", "value", "event_time")
	rels := []Relation{{Binding: "R", Table: rout}, {Binding: "A", Table: act}}
	cls, err := Conjunct(terms(t,
		"R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id"), rels)
	if err != nil {
		t.Fatal(err)
	}
	r, a := cls.Relations[0], cls.Relations[1]

	if len(r.Ps) != 1 || r.Ps[0].SQL() != "R.mach_id = 'm1'" {
		t.Errorf("R.Ps = %v", sqls(r.Ps))
	}
	if len(r.Jrm) != 1 || r.Jrm[0].SQL() != "R.neighbor = A.mach_id" {
		t.Errorf("R.Jrm = %v", sqls(r.Jrm))
	}
	if len(r.Po) != 1 || r.Po[0].SQL() != "A.value = 'idle'" {
		t.Errorf("R.Po = %v", sqls(r.Po))
	}
	if len(r.Pr)+len(r.Pm)+len(r.Js) != 0 {
		t.Errorf("R extra: %+v", r)
	}

	if len(a.Pr) != 1 || a.Pr[0].SQL() != "A.value = 'idle'" {
		t.Errorf("A.Pr = %v", sqls(a.Pr))
	}
	if len(a.Js) != 1 || a.Js[0].SQL() != "R.neighbor = A.mach_id" {
		t.Errorf("A.Js = %v", sqls(a.Js))
	}
	if len(a.Po) != 1 || a.Po[0].SQL() != "R.mach_id = 'm1'" {
		t.Errorf("A.Po = %v", sqls(a.Po))
	}
}

func TestSourceToSourceJoin(t *testing.T) {
	// R.mach_id = A.mach_id references only source columns on both sides:
	// Js for both relations.
	rout := mkTable(t, "Routing", "mach_id", "mach_id", "neighbor")
	act := mkTable(t, "Activity", "mach_id", "mach_id", "value")
	rels := []Relation{{Binding: "R", Table: rout}, {Binding: "A", Table: act}}
	cls, err := Conjunct(terms(t, "R.mach_id = A.mach_id"), rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Relations[0].Js) != 1 || len(cls.Relations[1].Js) != 1 {
		t.Errorf("Js not detected on both sides: %+v", cls.Relations)
	}
}

func TestConstantTerms(t *testing.T) {
	act := mkTable(t, "Activity", "mach_id", "mach_id", "value")
	rels := []Relation{{Binding: "A", Table: act}}
	cls, err := Conjunct(terms(t, "1 = 2 AND A.value = 'idle'"), rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Constants) != 1 || cls.Constants[0].SQL() != "1 = 2" {
		t.Errorf("constants = %v", sqls(cls.Constants))
	}
	// Constant also lands in Po.
	if len(cls.Relations[0].Po) != 1 {
		t.Errorf("Po = %v", sqls(cls.Relations[0].Po))
	}
}

func TestUnqualifiedResolution(t *testing.T) {
	rout := mkTable(t, "Routing", "mach_id", "mach_id", "neighbor")
	act := mkTable(t, "Activity", "mach_id", "mach_id", "value")
	rels := []Relation{{Binding: "R", Table: rout}, {Binding: "A", Table: act}}

	// "neighbor" is unambiguous; "mach_id" is ambiguous.
	cls, err := Conjunct(terms(t, "neighbor = 'm3'"), rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Relations[0].Pr) != 1 {
		t.Errorf("neighbor should classify as R's regular selection: %+v", cls.Relations[0])
	}
	if _, err := Conjunct(terms(t, "mach_id = 'm1'"), rels); err == nil {
		t.Error("ambiguous column should error")
	}
	if _, err := Conjunct(terms(t, "B.mach_id = 'm1'"), rels); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := Conjunct(terms(t, "A.nope = 'm1'"), rels); err == nil {
		t.Error("unknown column should error")
	}
}

func TestThreeWayJoinPo(t *testing.T) {
	a := mkTable(t, "A", "sid", "sid", "x")
	b := mkTable(t, "B", "sid", "sid", "y")
	c := mkTable(t, "C", "sid", "sid", "z")
	rels := []Relation{{Binding: "A", Table: a}, {Binding: "B", Table: b}, {Binding: "C", Table: c}}
	cls, err := Conjunct(terms(t, "A.x = B.y AND B.sid = C.sid"), rels)
	if err != nil {
		t.Fatal(err)
	}
	// For C: A.x = B.y does not reference C -> Po; B.sid = C.sid is Js.
	cc := cls.Relations[2]
	if len(cc.Po) != 1 || cc.Po[0].SQL() != "A.x = B.y" {
		t.Errorf("C.Po = %v", sqls(cc.Po))
	}
	if len(cc.Js) != 1 {
		t.Errorf("C.Js = %v", sqls(cc.Js))
	}
	// For A: A.x = B.y touches A's regular column -> Jrm.
	if len(cls.Relations[0].Jrm) != 1 {
		t.Errorf("A.Jrm = %v", sqls(cls.Relations[0].Jrm))
	}
}

func TestSourceColumnHelper(t *testing.T) {
	act := mkTable(t, "Activity", "mach_id", "mach_id", "value")
	r := Relation{Binding: "A", Table: act}
	if r.SourceColumn() != "mach_id" {
		t.Errorf("SourceColumn = %q", r.SourceColumn())
	}
	s, _ := storage.NewSchema([]storage.Column{{Name: "x", Kind: types.KindInt}})
	plain := Relation{Binding: "P", Table: storage.NewTable("P", s)}
	if plain.SourceColumn() != "" {
		t.Errorf("unmonitored SourceColumn = %q", plain.SourceColumn())
	}
}

func TestWithChecks(t *testing.T) {
	rout := mkTable(t, "Routing", "mach_id", "mach_id", "neighbor")
	e, err := sqlparser.ParseExpr(`neighbor <> mach_id`)
	if err != nil {
		t.Fatal(err)
	}
	rout.Schema.Checks = append(rout.Schema.Checks, e)
	rels := []Relation{{Binding: "R", Table: rout}}

	where, _ := sqlparser.ParseExpr(`R.mach_id = 'm1'`)
	combined := WithChecks(where, rels)
	want := "R.mach_id = 'm1' AND R.neighbor <> R.mach_id"
	if combined.SQL() != want {
		t.Errorf("WithChecks = %q, want %q", combined.SQL(), want)
	}
	// Original expressions untouched.
	if e.SQL() != "neighbor <> mach_id" {
		t.Errorf("check AST mutated: %s", e.SQL())
	}
	// Nil where: just the qualified checks.
	onlyChecks := WithChecks(nil, rels)
	if onlyChecks.SQL() != "R.neighbor <> R.mach_id" {
		t.Errorf("nil-where WithChecks = %q", onlyChecks.SQL())
	}
	// Table-name-qualified refs in the check are rewritten to the binding.
	e2, _ := sqlparser.ParseExpr(`Routing.neighbor <> 'x'`)
	rout.Schema.Checks = []any{e2}
	got := WithChecks(nil, rels)
	if got.SQL() != "R.neighbor <> 'x'" {
		t.Errorf("qualified rewrite = %q", got.SQL())
	}
	// No checks, no where: nil.
	plain := mkTable(t, "Plain", "mach_id", "mach_id", "x")
	if WithChecks(nil, []Relation{{Binding: "P", Table: plain}}) != nil {
		t.Error("no checks should yield nil")
	}
	// Non-expression garbage in Checks is skipped.
	plain.Schema.Checks = append(plain.Schema.Checks, 42)
	if WithChecks(nil, []Relation{{Binding: "P", Table: plain}}) != nil {
		t.Error("non-expression check entries must be ignored")
	}
}
