// Package classify organizes the basic terms of a conjunctive query
// predicate per relation, exactly as Notations 4–7 of the TRAC paper:
//
//	Ps  — data source only selection predicates (reference only c_s of R_i)
//	Pr  — regular column only selection predicates
//	Pm  — mixed selection predicates (c_s and a regular column of R_i)
//	Js  — join predicates whose R_i columns are only c_s
//	Jrm — join predicates touching at least one regular column of R_i
//	Po  — every predicate of Q not referencing R_i at all
//
// The recency-query generator keeps Ps (substituted onto Heartbeat), Js
// (likewise substituted) and Po in the per-relation recency arm; Pr, Pm and
// Jrm are dropped, which is what makes the arm an upper bound (Corollary 5)
// and, when Pm/Jrm are absent and Pr is satisfiable, the exact minimum
// (Theorems 3 and 4).
package classify

import (
	"fmt"
	"strings"

	"trac/internal/sqlparser"
	"trac/internal/storage"
)

// Relation is one FROM-list entry of the user query.
type Relation struct {
	Binding string // the name expressions refer to it by (alias or name)
	Table   *storage.Table
}

// SourceColumn returns the relation's data source column name, or "" when
// the table is not a monitored table.
func (r Relation) SourceColumn() string {
	if r.Table.Schema.SourceColumn < 0 {
		return ""
	}
	return r.Table.Schema.Columns[r.Table.Schema.SourceColumn].Name
}

// PerRelation is the classification of a conjunct from one relation's
// point of view.
type PerRelation struct {
	Ps  []sqlparser.Expr
	Pr  []sqlparser.Expr
	Pm  []sqlparser.Expr
	Js  []sqlparser.Expr
	Jrm []sqlparser.Expr
	Po  []sqlparser.Expr
}

// Classification is the per-relation breakdown of one conjunct plus the
// terms that reference no relation at all (constant terms such as 1 = 2).
type Classification struct {
	Relations []PerRelation
	Constants []sqlparser.Expr
}

// WithChecks implements the paper's §3.4 treatment of predicate-form
// constraints: "we can take a user query and append the conjunction of
// predicates defining such constraints. This converts Q to an equivalent
// expression Q′." Every CHECK constraint of every monitored relation in
// the query is conjoined onto the WHERE clause, with unqualified (or
// table-name-qualified) column references rewritten to the relation's
// binding. Appending is sound because stored rows always satisfy their
// checks (the engine enforces them on write), so Q′ ≡ Q on legal
// instances — while the *potential tuples* quantified over by the
// relevance definitions are now restricted to legal ones, increasing the
// precision of the relevant-source set.
func WithChecks(where sqlparser.Expr, rels []Relation) sqlparser.Expr {
	terms := []sqlparser.Expr{}
	if where != nil {
		terms = append(terms, where)
	}
	for _, rel := range rels {
		for _, raw := range rel.Table.Schema.Checks {
			e, ok := raw.(sqlparser.Expr)
			if !ok {
				continue
			}
			clone := sqlparser.CloneExpr(e)
			binding := rel.Binding
			tableName := rel.Table.Name
			sqlparser.WalkExpr(clone, func(x sqlparser.Expr) bool {
				if cr, ok := x.(*sqlparser.ColumnRef); ok {
					if cr.Table == "" || strings.EqualFold(cr.Table, tableName) {
						cr.Table = binding
					}
				}
				return true
			})
			terms = append(terms, clone)
		}
	}
	return sqlparser.AndAll(terms...)
}

// termRefs describes which relations a term touches and how.
type termRefs struct {
	// sourceCols[i] / regularCols[i]: the term references the source /
	// a regular column of relation i.
	sourceCols  map[int]bool
	regularCols map[int]bool
}

func (tr termRefs) relations() map[int]bool {
	out := make(map[int]bool)
	for i := range tr.sourceCols {
		out[i] = true
	}
	for i := range tr.regularCols {
		out[i] = true
	}
	return out
}

// Conjunct classifies the basic terms of one conjunct against the query's
// relations.
func Conjunct(terms []sqlparser.Expr, rels []Relation) (*Classification, error) {
	cls := &Classification{Relations: make([]PerRelation, len(rels))}
	for _, term := range terms {
		refs, err := analyze(term, rels)
		if err != nil {
			return nil, err
		}
		touched := refs.relations()
		if len(touched) == 0 {
			cls.Constants = append(cls.Constants, term)
			// A constant term belongs to Po of every relation: it doesn't
			// reference R_i but constrains Q.
			for i := range rels {
				cls.Relations[i].Po = append(cls.Relations[i].Po, term)
			}
			continue
		}
		for i := range rels {
			pr := &cls.Relations[i]
			if !touched[i] {
				pr.Po = append(pr.Po, term)
				continue
			}
			selection := len(touched) == 1
			src, reg := refs.sourceCols[i], refs.regularCols[i]
			switch {
			case selection && src && !reg:
				pr.Ps = append(pr.Ps, term)
			case selection && !src && reg:
				pr.Pr = append(pr.Pr, term)
			case selection: // src && reg
				pr.Pm = append(pr.Pm, term)
			case src && !reg:
				pr.Js = append(pr.Js, term)
			default: // join touching a regular column of R_i
				pr.Jrm = append(pr.Jrm, term)
			}
		}
	}
	return cls, nil
}

// analyze resolves every column reference in a term to (relation,
// source/regular). Unqualified names are resolved across all relations;
// ambiguity is an error, mirroring SQL name resolution.
func analyze(term sqlparser.Expr, rels []Relation) (termRefs, error) {
	tr := termRefs{sourceCols: make(map[int]bool), regularCols: make(map[int]bool)}
	var firstErr error
	sqlparser.WalkExpr(term, func(e sqlparser.Expr) bool {
		cr, ok := e.(*sqlparser.ColumnRef)
		if !ok {
			return true
		}
		rel, col, err := resolve(cr, rels)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return false
		}
		if col == rels[rel].Table.Schema.SourceColumn {
			tr.sourceCols[rel] = true
		} else {
			tr.regularCols[rel] = true
		}
		return true
	})
	return tr, firstErr
}

func resolve(cr *sqlparser.ColumnRef, rels []Relation) (int, int, error) {
	if cr.Table != "" {
		for i, r := range rels {
			if strings.EqualFold(r.Binding, cr.Table) {
				ci := r.Table.Schema.ColumnIndex(cr.Column)
				if ci < 0 {
					return 0, 0, fmt.Errorf("classify: relation %q has no column %q", cr.Table, cr.Column)
				}
				return i, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("classify: unknown relation %q", cr.Table)
	}
	found, foundCol := -1, -1
	for i, r := range rels {
		if ci := r.Table.Schema.ColumnIndex(cr.Column); ci >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("classify: column %q is ambiguous", cr.Column)
			}
			found, foundCol = i, ci
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("classify: unknown column %q", cr.Column)
	}
	return found, foundCol, nil
}
