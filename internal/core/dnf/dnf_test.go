package dnf

import (
	"strings"
	"testing"

	"trac/internal/sqlparser"
)

func convert(t *testing.T, src string) DNF {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	d, err := Convert(e)
	if err != nil {
		t.Fatalf("convert %q: %v", src, err)
	}
	return d
}

func TestNilPredicateIsTrue(t *testing.T) {
	d, err := Convert(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || len(d[0]) != 0 {
		t.Errorf("nil predicate DNF = %v", d)
	}
	if d.SQL() != "TRUE" {
		t.Errorf("SQL = %q", d.SQL())
	}
}

func TestAlreadyConjunctive(t *testing.T) {
	d := convert(t, "a = 1 AND b = 2 AND c = 3")
	if len(d) != 1 || len(d[0]) != 3 {
		t.Fatalf("DNF = %v", d)
	}
}

func TestSimpleDisjunction(t *testing.T) {
	d := convert(t, "a = 1 OR b = 2")
	if len(d) != 2 || len(d[0]) != 1 || len(d[1]) != 1 {
		t.Fatalf("DNF shape = %v", d)
	}
}

func TestDistribution(t *testing.T) {
	// (a OR b) AND (c OR d) -> 4 conjuncts.
	d := convert(t, "(a = 1 OR b = 2) AND (c = 3 OR d = 4)")
	if len(d) != 4 {
		t.Fatalf("got %d conjuncts, want 4", len(d))
	}
	for _, c := range d {
		if len(c) != 2 {
			t.Errorf("conjunct size = %d, want 2", len(c))
		}
	}
	want := "a = 1 AND c = 3 OR a = 1 AND d = 4 OR b = 2 AND c = 3 OR b = 2 AND d = 4"
	if got := d.SQL(); got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
}

func TestDeMorganAndAbsorption(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"NOT (a = 1 AND b = 2)", "a <> 1 OR b <> 2"},
		{"NOT (a = 1 OR b = 2)", "a <> 1 AND b <> 2"},
		{"NOT a < 1", "a >= 1"},
		{"NOT (a IN (1, 2))", "a NOT IN (1, 2)"},
		{"NOT (a NOT IN (1, 2))", "a IN (1, 2)"},
		{"NOT (a BETWEEN 1 AND 2)", "a NOT BETWEEN 1 AND 2"},
		{"NOT (a LIKE 'x%')", "a NOT LIKE 'x%'"},
		{"NOT (a IS NULL)", "a IS NOT NULL"},
		{"NOT NOT a = 1", "a = 1"},
		{"NOT (NOT (a = 1 OR b = 2))", "a = 1 OR b = 2"},
	}
	for _, c := range cases {
		if got := convert(t, c.src).SQL(); got != c.want {
			t.Errorf("Convert(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestPaperStyleQuery(t *testing.T) {
	// The paper's Q1 predicate shape: IN plus equality stays one conjunct
	// of two basic terms.
	d := convert(t, "mach_id IN ('m1', 'm2') AND value = 'idle'")
	if len(d) != 1 || len(d[0]) != 2 {
		t.Fatalf("DNF = %v", d)
	}
	if _, ok := d[0][0].(*sqlparser.In); !ok {
		t.Errorf("term 0 = %T", d[0][0])
	}
	if _, ok := d[0][1].(*sqlparser.Comparison); !ok {
		t.Errorf("term 1 = %T", d[0][1])
	}
}

func TestMixedNesting(t *testing.T) {
	d := convert(t, "a = 1 AND (b = 2 OR (c = 3 AND d = 4))")
	if len(d) != 2 {
		t.Fatalf("got %d conjuncts", len(d))
	}
	if len(d[0]) != 2 || len(d[1]) != 3 {
		t.Errorf("conjunct sizes = %d, %d", len(d[0]), len(d[1]))
	}
}

func TestBlowUpGuard(t *testing.T) {
	// 11 ANDed (x OR y) pairs = 2^11 = 2048 conjuncts > MaxConjuncts.
	var parts []string
	for i := 0; i < 11; i++ {
		parts = append(parts, "(a = 1 OR b = 2)")
	}
	e, err := sqlparser.ParseExpr(strings.Join(parts, " AND "))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(e); err == nil {
		t.Error("expected blow-up guard error")
	}
}

func TestConvertDoesNotMutateInput(t *testing.T) {
	e, _ := sqlparser.ParseExpr("NOT (a = 1 AND b = 2)")
	before := e.SQL()
	if _, err := Convert(e); err != nil {
		t.Fatal(err)
	}
	if e.SQL() != before {
		t.Errorf("input mutated: %q -> %q", before, e.SQL())
	}
}

func TestNotOnNonAbsorbingTerm(t *testing.T) {
	// NOT over a bare column keeps an explicit NOT wrapper.
	d := convert(t, "NOT (flag = TRUE OR x > 1) AND y = 2")
	if len(d) != 1 || len(d[0]) != 3 {
		t.Fatalf("DNF = %v", d.SQL())
	}
}
