// Package dnf converts SQL predicates to disjunctive normal form.
//
// The TRAC techniques (§4 of the paper) operate on queries whose predicates
// are conjunctions of "basic terms" — terms free of AND/OR. An arbitrary
// WHERE clause is first rewritten to negation normal form (NOT pushed onto
// the basic terms, where the comparison/IN/BETWEEN/LIKE/IS NULL nodes absorb
// it) and then distributed into a disjunction of conjunctions. Corollary 1
// of the paper then lets the relevant-source set be computed per disjunct
// and unioned.
package dnf

import (
	"fmt"

	"trac/internal/sqlparser"
)

// Conjunct is one AND-connected group of basic terms.
type Conjunct []sqlparser.Expr

// DNF is a disjunction of conjuncts.
type DNF []Conjunct

// MaxConjuncts bounds the DNF blow-up; conversion fails beyond it rather
// than consuming unbounded memory (callers fall back to the conservative
// all-sources upper bound).
const MaxConjuncts = 1024

// Convert rewrites a predicate into DNF. A nil predicate converts to a
// single empty conjunct (TRUE).
func Convert(e sqlparser.Expr) (DNF, error) {
	if e == nil {
		return DNF{Conjunct{}}, nil
	}
	nnf := pushNot(sqlparser.CloneExpr(e), false)
	d, err := distribute(nnf)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// SQL renders a DNF back to a predicate string (used in tests and
// diagnostics).
func (d DNF) SQL() string {
	var ors []sqlparser.Expr
	for _, c := range d {
		ors = append(ors, sqlparser.AndAll([]sqlparser.Expr(c)...))
	}
	combined := sqlparser.OrAll(ors...)
	if combined == nil {
		return "TRUE"
	}
	return combined.SQL()
}

// pushNot rewrites e into negation normal form. negated tracks whether an
// odd number of NOTs surround the current node.
func pushNot(e sqlparser.Expr, negated bool) sqlparser.Expr {
	switch n := e.(type) {
	case *sqlparser.Not:
		return pushNot(n.Expr, !negated)
	case *sqlparser.Logical:
		op := n.Op
		if negated {
			// De Morgan.
			if op == sqlparser.LogicAnd {
				op = sqlparser.LogicOr
			} else {
				op = sqlparser.LogicAnd
			}
		}
		return &sqlparser.Logical{Op: op, Left: pushNot(n.Left, negated), Right: pushNot(n.Right, negated)}
	case *sqlparser.Comparison:
		if negated {
			return &sqlparser.Comparison{Op: n.Op.Negate(), Left: n.Left, Right: n.Right}
		}
		return n
	case *sqlparser.In:
		if negated {
			return &sqlparser.In{Expr: n.Expr, List: n.List, Negated: !n.Negated}
		}
		return n
	case *sqlparser.Between:
		if negated {
			return &sqlparser.Between{Expr: n.Expr, Lo: n.Lo, Hi: n.Hi, Negated: !n.Negated}
		}
		return n
	case *sqlparser.Like:
		if negated {
			return &sqlparser.Like{Expr: n.Expr, Pattern: n.Pattern, Negated: !n.Negated}
		}
		return n
	case *sqlparser.IsNull:
		if negated {
			return &sqlparser.IsNull{Expr: n.Expr, Negated: !n.Negated}
		}
		return n
	default:
		// Literals, column refs, arithmetic: negation has no basic-term
		// absorption; keep an explicit NOT wrapper.
		if negated {
			return &sqlparser.Not{Expr: e}
		}
		return e
	}
}

// distribute converts an NNF expression into DNF.
func distribute(e sqlparser.Expr) (DNF, error) {
	switch n := e.(type) {
	case *sqlparser.Logical:
		left, err := distribute(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := distribute(n.Right)
		if err != nil {
			return nil, err
		}
		if n.Op == sqlparser.LogicOr {
			if len(left)+len(right) > MaxConjuncts {
				return nil, fmt.Errorf("dnf: predicate expands past %d conjuncts", MaxConjuncts)
			}
			return append(left, right...), nil
		}
		// AND: cross product of the two disjunctions.
		if len(left)*len(right) > MaxConjuncts {
			return nil, fmt.Errorf("dnf: predicate expands past %d conjuncts", MaxConjuncts)
		}
		out := make(DNF, 0, len(left)*len(right))
		for _, lc := range left {
			for _, rc := range right {
				merged := make(Conjunct, 0, len(lc)+len(rc))
				merged = append(merged, lc...)
				merged = append(merged, rc...)
				out = append(out, merged)
			}
		}
		return out, nil
	default:
		return DNF{Conjunct{e}}, nil
	}
}
