// Package recgen generates recency queries: given a user SPJ query, it
// derives the query over the Heartbeat table whose answer is the set of
// data sources "relevant" to the user query (paper §4).
//
// The construction follows the paper exactly:
//
//   - The WHERE clause is converted to DNF; by Corollary 1 the relevant set
//     is the union over disjuncts.
//   - Within a disjunct, by Corollary 4 the set is the union over relations
//     of the sources relevant *via* each relation.
//   - Per relation R_i, the arm is
//     π_{sid}( σ_{Ps' ∧ Js' ∧ Po} ( Heartbeat × R_1 × … × R_{i-1} ×
//     R_{i+1} × … × R_n ) )
//     where Ps'/Js' substitute R_i's data source column with the Heartbeat
//     sid column (Theorem 4; Theorem 3 is the n=1 case). Pr, Pm and Jrm are
//     dropped — that is what makes the arm an upper bound (Corollary 5).
//   - The arm is the exact minimum when Pm and Jrm are empty and Pr is
//     satisfiable over the column domains (Theorems 3/4); satisfiability is
//     delegated to the sat package. Provably unsatisfiable disjuncts are
//     dropped entirely (Corollaries 2/6).
//
// The generator emits an ordinary SQL string (a UNION of arms) that the
// engine plans and runs like any user query, mirroring the paper's
// PostgreSQL prototype, where the PL/pgSQL table function built the recency
// query as text. Emitting text keeps the "query parsing and generation"
// cost measurable, which Figure 1/2 of the paper break out separately.
package recgen

import (
	"fmt"
	"strings"

	"trac/internal/core/classify"
	"trac/internal/core/dnf"
	"trac/internal/core/sat"
	"trac/internal/sqlparser"
	"trac/internal/storage"
)

// Options configures the Heartbeat schema names.
type Options struct {
	HeartbeatTable string // default "Heartbeat"
	SidColumn      string // default "sid"
	RecencyColumn  string // default "recency"
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTable == "" {
		o.HeartbeatTable = "Heartbeat"
	}
	if o.SidColumn == "" {
		o.SidColumn = "sid"
	}
	if o.RecencyColumn == "" {
		o.RecencyColumn = "recency"
	}
	return o
}

// ArmInfo describes one generated per-(disjunct, relation) arm.
type ArmInfo struct {
	Disjunct int
	Relation string // binding name
	Minimal  bool
	Reasons  []string // why minimality was lost, when it was
	SQL      string
}

// Generated is the outcome of recency-query generation.
type Generated struct {
	// Stmt is the generated recency query (nil when Empty).
	Stmt *sqlparser.SelectStmt
	// SQL is Stmt rendered to text (empty when Empty).
	SQL string
	// Empty means the relevant-source set is provably empty: the user
	// query's predicates are unsatisfiable (Corollaries 2/6), so no recency
	// query needs to run.
	Empty bool
	// Minimal means the computed set is guaranteed to be exactly S(Q)
	// (Theorems 3/4 applied to every arm). When false the set is still a
	// complete upper bound (Corollaries 3/5).
	Minimal bool
	// Reasons explains a false Minimal.
	Reasons []string
	// Arms carries per-arm diagnostics.
	Arms []ArmInfo
	// SkippedDisjuncts counts disjuncts dropped as provably unsatisfiable.
	SkippedDisjuncts int
}

// Generate derives the recency query for a user SELECT.
func Generate(sel *sqlparser.SelectStmt, cat *storage.Catalog, opts Options) (*Generated, error) {
	opts = opts.withDefaults()
	if len(sel.Union) > 0 {
		return nil, fmt.Errorf("recgen: UNION queries are not single SPJ expressions")
	}
	if len(sel.From) == 0 {
		return &Generated{Empty: true, Minimal: true}, nil
	}

	// Aggregation (GROUP BY / HAVING / aggregate select items) sits above
	// the SPJ core the paper's definitions cover. Relevance is computed for
	// the core: by Theorem 1 no single update from a core-irrelevant source
	// can change the core result set, hence no aggregate over it either —
	// completeness carries over unconditionally. Minimality carries over
	// only when every core change is guaranteed to surface in the answer,
	// which holds for an ungrouped COUNT(*) (any qualifying insert bumps
	// the count — the shape of the paper's Q1–Q4) but not in general (a
	// MIN may absorb a new row; a HAVING may filter the changed group).
	hasCountStar, hasAgg := false, false
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		if fc, ok := it.Expr.(*sqlparser.FuncCall); ok {
			hasAgg = true
			if fc.Name == sqlparser.FuncCount && fc.Star {
				hasCountStar = true
			}
		}
	}
	aggDowngrade := ""
	switch {
	case sel.Having != nil:
		aggDowngrade = "HAVING may filter the group a core update lands in"
	case len(sel.GroupBy) > 0:
		aggDowngrade = "GROUP BY aggregates may absorb core updates"
	case hasAgg && !hasCountStar:
		aggDowngrade = "aggregates without COUNT(*) may absorb core updates"
	}

	// Resolve relations.
	rels := make([]classify.Relation, len(sel.From))
	for i, ref := range sel.From {
		tbl, err := cat.Get(ref.Name)
		if err != nil {
			return nil, err
		}
		rels[i] = classify.Relation{Binding: ref.Binding(), Table: tbl}
	}
	hb, err := cat.Get(opts.HeartbeatTable)
	if err != nil {
		return nil, fmt.Errorf("recgen: heartbeat table: %w", err)
	}
	if hb.Schema.ColumnIndex(opts.SidColumn) < 0 || hb.Schema.ColumnIndex(opts.RecencyColumn) < 0 {
		return nil, fmt.Errorf("recgen: heartbeat table %s lacks %s/%s columns",
			opts.HeartbeatTable, opts.SidColumn, opts.RecencyColumn)
	}
	hAlias := freshAlias(sel.From)

	// §3.4: conjoin predicate-form CHECK constraints onto the query so the
	// potential tuples of the relevance definitions are restricted to legal
	// ones (higher precision, same completeness).
	where := classify.WithChecks(sel.Where, rels)

	// DNF conversion; on blow-up fall back to the all-sources upper bound.
	d, err := dnf.Convert(where)
	if err != nil {
		stmt := allSourcesStmt(opts, hAlias)
		return &Generated{
			Stmt:    stmt,
			SQL:     stmt.SQL(),
			Minimal: false,
			Reasons: []string{fmt.Sprintf("DNF conversion failed (%v); reporting all sources", err)},
		}, nil
	}

	gen := &Generated{Minimal: true}
	if aggDowngrade != "" {
		gen.Minimal = false
		gen.Reasons = append(gen.Reasons, "aggregate query: relevance computed for its SPJ core ("+aggDowngrade+")")
	}
	var arms []*sqlparser.SelectStmt
	seen := make(map[string]bool)

	for di, conj := range d {
		cls, err := classify.Conjunct(conj, rels)
		if err != nil {
			return nil, err
		}
		// Corollary 2/6 shortcut: a provably unsatisfiable disjunct
		// contributes no relevant sources.
		if sat.CheckConstants(cls.Constants) == sat.Unsat {
			gen.SkippedDisjuncts++
			continue
		}
		prSat := make([]sat.Result, len(rels))
		unsat := false
		for i, rel := range rels {
			prSat[i] = sat.CheckRegular(cls.Relations[i].Pr, rel.Binding, rel.Table)
			if prSat[i] == sat.Unsat {
				unsat = true
			}
		}
		if unsat {
			gen.SkippedDisjuncts++
			continue
		}

		for i, rel := range rels {
			if rel.SourceColumn() == "" {
				// Unmonitored relation: no updates are tagged with sources
				// via it, so it contributes no arm.
				continue
			}
			pr := cls.Relations[i]
			arm, err := buildArm(rels, i, pr, hb, hAlias, opts)
			if err != nil {
				return nil, err
			}
			info := ArmInfo{Disjunct: di, Relation: rel.Binding, Minimal: true, SQL: arm.SQL()}
			if len(pr.Pm) > 0 {
				info.Minimal = false
				info.Reasons = append(info.Reasons,
					fmt.Sprintf("mixed predicate on %s: %s", rel.Binding, renderTerms(pr.Pm)))
			}
			if len(pr.Jrm) > 0 {
				info.Minimal = false
				info.Reasons = append(info.Reasons,
					fmt.Sprintf("regular-column join predicate on %s: %s", rel.Binding, renderTerms(pr.Jrm)))
			}
			if prSat[i] != sat.Sat {
				info.Minimal = false
				info.Reasons = append(info.Reasons,
					fmt.Sprintf("satisfiability of regular predicates on %s is %v", rel.Binding, prSat[i]))
			}
			if !info.Minimal {
				gen.Minimal = false
				gen.Reasons = append(gen.Reasons, info.Reasons...)
			}
			gen.Arms = append(gen.Arms, info)
			key := arm.SQL()
			if !seen[key] {
				seen[key] = true
				arms = append(arms, arm)
			}
		}
	}

	if len(arms) == 0 {
		gen.Empty = true
		return gen, nil
	}
	head := arms[0]
	head.Union = append(head.Union, arms[1:]...)
	gen.Stmt = head
	gen.SQL = head.SQL()
	return gen, nil
}

// NaiveStmt is the Naive method's recency query: every source in the
// Heartbeat table.
func NaiveStmt(opts Options) *sqlparser.SelectStmt {
	opts = opts.withDefaults()
	return allSourcesStmt(opts, "trac_h")
}

// NaiveSQL renders NaiveStmt.
func NaiveSQL(opts Options) string { return NaiveStmt(opts).SQL() }

func allSourcesStmt(opts Options, hAlias string) *sqlparser.SelectStmt {
	return &sqlparser.SelectStmt{
		Items: []sqlparser.SelectItem{
			{Expr: &sqlparser.ColumnRef{Table: hAlias, Column: opts.SidColumn}, Alias: opts.SidColumn},
			{Expr: &sqlparser.ColumnRef{Table: hAlias, Column: opts.RecencyColumn}, Alias: opts.RecencyColumn},
		},
		From: []sqlparser.TableRef{{Name: opts.HeartbeatTable, Alias: hAlias}},
	}
}

// buildArm constructs the recency arm for relation index i of one conjunct.
func buildArm(rels []classify.Relation, i int, pr classify.PerRelation,
	hb *storage.Table, hAlias string, opts Options) (*sqlparser.SelectStmt, error) {

	// FROM: Heartbeat plus every relation except R_i. The other relations
	// stay even if unreferenced by the remaining predicates: Definition 2
	// requires actual tuples to exist in them, and an empty relation must
	// make the arm empty.
	from := []sqlparser.TableRef{{Name: hb.Name, Alias: hAlias}}
	for j, rel := range rels {
		if j == i {
			continue
		}
		ref := sqlparser.TableRef{Name: rel.Table.Name}
		if !strings.EqualFold(rel.Binding, rel.Table.Name) {
			ref.Alias = rel.Binding
		}
		from = append(from, ref)
	}

	// WHERE: substituted Ps ∧ substituted Js ∧ Po. Every surviving
	// unqualified reference is qualified with its binding so that nothing
	// becomes ambiguous against the Heartbeat columns added to FROM.
	var terms []sqlparser.Expr
	for _, t := range pr.Ps {
		terms = append(terms, qualifyRefs(substituteSource(t, rels, i, hAlias, opts.SidColumn), rels))
	}
	for _, t := range pr.Js {
		terms = append(terms, qualifyRefs(substituteSource(t, rels, i, hAlias, opts.SidColumn), rels))
	}
	for _, t := range pr.Po {
		terms = append(terms, qualifyRefs(sqlparser.CloneExpr(t), rels))
	}

	return &sqlparser.SelectStmt{
		Distinct: true,
		Items: []sqlparser.SelectItem{
			{Expr: &sqlparser.ColumnRef{Table: hAlias, Column: opts.SidColumn}, Alias: opts.SidColumn},
			{Expr: &sqlparser.ColumnRef{Table: hAlias, Column: opts.RecencyColumn}, Alias: opts.RecencyColumn},
		},
		From:  from,
		Where: sqlparser.AndAll(terms...),
	}, nil
}

// substituteSource clones a term, replacing every reference to R_i's data
// source column with H.sid (the paper's Ps → Ps′, Js → Js′ rewriting).
func substituteSource(term sqlparser.Expr, rels []classify.Relation, i int, hAlias, sidCol string) sqlparser.Expr {
	clone := sqlparser.CloneExpr(term)
	target := rels[i]
	srcIdx := target.Table.Schema.SourceColumn
	sqlparser.WalkExpr(clone, func(e sqlparser.Expr) bool {
		cr, ok := e.(*sqlparser.ColumnRef)
		if !ok {
			return true
		}
		if refersTo(cr, rels, i) && target.Table.Schema.ColumnIndex(cr.Column) == srcIdx {
			cr.Table = hAlias
			cr.Column = sidCol
		}
		return true
	})
	return clone
}

// refersTo reports whether a column reference resolves to relation i.
func refersTo(cr *sqlparser.ColumnRef, rels []classify.Relation, i int) bool {
	if cr.Table != "" {
		return strings.EqualFold(cr.Table, rels[i].Binding)
	}
	// Unqualified: resolves to i iff i is the unique relation with the
	// column (the classifier already rejected ambiguous references).
	for j, rel := range rels {
		if rel.Table.Schema.ColumnIndex(cr.Column) >= 0 {
			return j == i
		}
	}
	return false
}

// qualifyRefs rewrites unqualified column references (in place, on a clone)
// to their resolved binding.
func qualifyRefs(clone sqlparser.Expr, rels []classify.Relation) sqlparser.Expr {
	sqlparser.WalkExpr(clone, func(e sqlparser.Expr) bool {
		cr, ok := e.(*sqlparser.ColumnRef)
		if !ok || cr.Table != "" {
			return true
		}
		for _, rel := range rels {
			if rel.Table.Schema.ColumnIndex(cr.Column) >= 0 {
				cr.Table = rel.Binding
				break
			}
		}
		return true
	})
	return clone
}

func renderTerms(terms []sqlparser.Expr) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = t.SQL()
	}
	return strings.Join(parts, " AND ")
}

// freshAlias picks a Heartbeat alias not colliding with the query bindings.
func freshAlias(from []sqlparser.TableRef) string {
	taken := make(map[string]bool, len(from))
	for _, ref := range from {
		taken[strings.ToLower(ref.Binding())] = true
		taken[strings.ToLower(ref.Name)] = true
	}
	alias := "trac_h"
	for n := 2; taken[alias]; n++ {
		alias = fmt.Sprintf("trac_h%d", n)
	}
	return alias
}
