package recgen

import (
	"strings"
	"testing"

	"trac/internal/core/bruteforce"
	"trac/internal/engine"
	"trac/internal/sqlparser"
)

// TestCheckConstraintActsAsDomain shows §3.4 constraint exploitation: a
// CHECK over a column's legal values makes an out-of-range predicate
// provably unsatisfiable even without a declared Domain.
func TestCheckConstraintActsAsDomain(t *testing.T) {
	db := engine.New()
	db.MustExec(`CREATE TABLE Activity (mach_id TEXT, value TEXT,
		CHECK (value IN ('idle', 'busy')))`)
	db.MustExec(`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`)
	act, _ := db.Catalog().Get("Activity")
	act.Schema.SetSourceColumn("mach_id")
	db.MustExec(`INSERT INTO Heartbeat VALUES ('m1', '2006-03-15 14:20:05')`)

	g := generate(t, db, `SELECT mach_id FROM Activity WHERE value = 'down'`)
	if !g.Empty {
		t.Errorf("CHECK should prove value='down' unsatisfiable; got %q", g.SQL)
	}
	// A legal value is still satisfiable and minimal: the check lands in Pr
	// and sat proves it via the point witness.
	g = generate(t, db, `SELECT mach_id FROM Activity WHERE value = 'idle'`)
	if g.Empty {
		t.Fatal("legal value should not be empty")
	}
	if !g.Minimal {
		t.Errorf("point + IN-check should remain provably satisfiable: %v", g.Reasons)
	}
}

// TestCheckEnforcedOnWrite verifies the engine side: rows violating a CHECK
// are rejected on INSERT and UPDATE, which is what makes appending checks to
// queries sound.
func TestCheckEnforcedOnWrite(t *testing.T) {
	db := engine.New()
	db.MustExec(`CREATE TABLE Routing (mach_id TEXT, neighbor TEXT,
		CONSTRAINT no_self CHECK (neighbor <> mach_id))`)
	if _, err := db.Exec(`INSERT INTO Routing VALUES ('m1', 'm1')`); err == nil {
		t.Error("self-neighbor insert should violate CHECK")
	}
	if _, err := db.Exec(`INSERT INTO Routing VALUES ('m1', 'm2')`); err != nil {
		t.Fatalf("legal insert failed: %v", err)
	}
	if _, err := db.Exec(`UPDATE Routing SET neighbor = 'm1' WHERE mach_id = 'm1'`); err == nil {
		t.Error("update into violation should fail")
	}
	// AddCheck on a table with a violating row fails.
	db.MustExec(`CREATE TABLE T2 (a BIGINT)`)
	db.MustExec(`INSERT INTO T2 VALUES (-5)`)
	if err := db.AddCheck("T2", `a >= 0`); err == nil {
		t.Error("AddCheck over violating rows should fail")
	}
	db.MustExec(`DELETE FROM T2`)
	if err := db.AddCheck("T2", `a >= 0`); err != nil {
		t.Fatalf("AddCheck: %v", err)
	}
	if _, err := db.Exec(`INSERT INTO T2 VALUES (-1)`); err == nil {
		t.Error("insert violating added check should fail")
	}
}

// TestPaperSelfNeighborConstraint reproduces the paper's §4.1.2 closing
// observation: with all machines busy, m1 is irrelevant to Q2 — and with
// the "a machine can't have itself as a neighbor" constraint, the
// two-update escape hatch is closed, so the exact S(Q) (brute force over
// legal instances) shrinks.
func TestPaperSelfNeighborConstraint(t *testing.T) {
	build := func(withCheck bool) *engine.DB {
		db := engine.New()
		routingDDL := `CREATE TABLE Routing (mach_id TEXT, neighbor TEXT)`
		if withCheck {
			routingDDL = `CREATE TABLE Routing (mach_id TEXT, neighbor TEXT, CHECK (neighbor <> mach_id))`
		}
		db.MustExec(`CREATE TABLE Activity (mach_id TEXT, value TEXT)`)
		db.MustExec(routingDDL)
		db.MustExec(`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`)
		for _, tc := range []struct{ table, col string }{{"Activity", "mach_id"}, {"Routing", "mach_id"}} {
			tbl, _ := db.Catalog().Get(tc.table)
			tbl.Schema.SetSourceColumn(tc.col)
		}
		// Finite domains for brute force.
		act, _ := db.Catalog().Get("Activity")
		act.Schema.Columns[0].Domain = mustStringDomain("m1", "m2", "m3")
		act.Schema.Columns[1].Domain = mustStringDomain("busy", "idle")
		rout, _ := db.Catalog().Get("Routing")
		rout.Schema.Columns[0].Domain = mustStringDomain("m1", "m2", "m3")
		rout.Schema.Columns[1].Domain = mustStringDomain("m1", "m2", "m3")

		db.MustExec(`INSERT INTO Activity VALUES ('m1', 'busy'), ('m2', 'busy'), ('m3', 'busy')`)
		db.MustExec(`INSERT INTO Routing VALUES ('m1', 'm3'), ('m2', 'm3')`)
		for _, sid := range []string{"m1", "m2", "m3"} {
			db.MustExec(`INSERT INTO Heartbeat VALUES ('` + sid + `', '2006-03-15 14:20:05')`)
		}
		return db
	}
	q2 := `SELECT A.mach_id FROM Routing R, Activity A
		WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`

	exact := func(db *engine.DB) string {
		sel, _ := sqlparser.ParseSelect(q2)
		got, err := bruteforce.Relevant(sel, db.Catalog(), db.Snapshot(), bruteforce.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(got, ",")
	}

	// Without the constraint: S = {m3} (via A; the paper's all-busy case).
	if got := exact(build(false)); got != "m3" {
		t.Errorf("unconstrained exact = %q, want m3", got)
	}
	// With the constraint: identical here (the constraint prunes potential
	// Routing tuples with neighbor = mach_id, but m3 stays relevant via A
	// because the actual routing rows are legal). The crucial paper point:
	// the two-update sequence from m1 ((m1,idle), then (m1,m1)) is now
	// impossible — the second update violates the check.
	db := build(true)
	if got := exact(db); got != "m3" {
		t.Errorf("constrained exact = %q, want m3", got)
	}
	db.MustExec(`UPDATE Activity SET value = 'idle' WHERE mach_id = 'm1'`)
	if _, err := db.Exec(`INSERT INTO Routing VALUES ('m1', 'm1')`); err == nil {
		t.Error("the paper's two-update escape must be blocked by the constraint")
	}
}

// TestConstraintTightensRelevance shows a case where the §3.4 appending
// visibly shrinks the generated set: the check ties the source column to a
// prefix, so sources outside it are excluded even though the query itself
// has no source predicate.
func TestConstraintTightensRelevance(t *testing.T) {
	db := engine.New()
	db.MustExec(`CREATE TABLE PoolA (mach_id TEXT, value TEXT,
		CHECK (mach_id LIKE 'a%'))`)
	db.MustExec(`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`)
	tbl, _ := db.Catalog().Get("PoolA")
	tbl.Schema.SetSourceColumn("mach_id")
	db.MustExec(`INSERT INTO Heartbeat VALUES
		('a1', '2006-03-15 14:20:05'), ('a2', '2006-03-15 14:21:05'),
		('b1', '2006-03-15 14:22:05')`)

	g := generate(t, db, `SELECT mach_id FROM PoolA WHERE value = 'x'`)
	if g.Empty {
		t.Fatal("should not be empty")
	}
	// The check is a pure source predicate: it must appear (substituted)
	// in the recency query and exclude b1.
	if !strings.Contains(g.SQL, "trac_h.sid LIKE 'a%'") {
		t.Errorf("check not substituted into recency query: %s", g.SQL)
	}
	got := run(t, db, g)
	if strings.Join(got, ",") != "a1,a2" {
		t.Errorf("relevant = %v, want [a1 a2]", got)
	}
}

// TestCompletenessWithChecksProperty re-runs the completeness property with
// a self-neighbor constraint installed.
func TestCompletenessWithChecksProperty(t *testing.T) {
	db := paperDB(t)
	rout, _ := db.Catalog().Get("Routing")
	act, _ := db.Catalog().Get("Activity")
	machines := mustStringDomain("m1", "m2", "m3")
	act.Schema.Columns[0].Domain = machines
	rout.Schema.Columns[0].Domain = machines
	rout.Schema.Columns[1].Domain = machines
	// event_time has an infinite domain; restrict queries to avoid it.
	if err := db.AddCheck("Routing", `neighbor <> mach_id`); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT A.mach_id FROM Routing R, Activity A WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`,
		`SELECT mach_id FROM Routing WHERE neighbor = 'm3'`,
		`SELECT mach_id FROM Routing WHERE neighbor = 'm3' AND mach_id = 'm3'`,
	}
	for _, q := range queries {
		sel, err := sqlparser.ParseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force needs finite domains on every regular column used;
		// event_time is not referenced by these queries but is enumerated
		// anyway, so give it a singleton domain.
		// (Routing/Activity have event_time TIMESTAMP in paperDB.)
		exact, err := bruteforce.Relevant(sel, db.Catalog(), db.Snapshot(), bruteforce.Options{})
		if err != nil {
			// Expected for the TIMESTAMP domain; skip exactness and just
			// confirm the generated query runs.
			g := generate(t, db, q)
			if !g.Empty {
				run(t, db, g)
			}
			continue
		}
		g := generate(t, db, q)
		got := run(t, db, g)
		set := map[string]bool{}
		for _, s := range got {
			set[s] = true
		}
		for _, s := range exact {
			if !set[s] {
				t.Errorf("completeness violated for %q: %v ⊄ %v", q, exact, got)
			}
		}
	}
}
