package recgen

import (
	"strings"
	"testing"

	"trac/internal/engine"
	"trac/internal/sqlparser"
	"trac/internal/types"
)

func mustStringDomain(vals ...string) types.Domain {
	return types.FiniteStringDomain(vals...)
}

// paperDB builds the paper's schema with Table 1 / Table 2 data and the
// example Heartbeat contents, using value's finite domain {idle, busy}.
func paperDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	for _, sql := range []string{
		`CREATE TABLE Activity (mach_id TEXT, value TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Routing (mach_id TEXT, neighbor TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`,
		`INSERT INTO Activity VALUES
			('m1', 'idle', '2006-03-11 20:37:46'),
			('m2', 'busy', '2006-02-10 18:22:01'),
			('m3', 'idle', '2006-03-12 10:23:05')`,
		`INSERT INTO Routing VALUES
			('m1', 'm3', '2006-03-12 23:20:06'),
			('m2', 'm3', '2006-02-10 03:34:21')`,
		`INSERT INTO Heartbeat VALUES
			('m1', '2006-03-15 14:20:05'),
			('m2', '2006-03-14 17:23:00'),
			('m3', '2006-03-15 14:40:05')`,
	} {
		db.MustExec(sql)
	}
	mark := func(table, col string) {
		tbl, err := db.Catalog().Get(table)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Schema.SetSourceColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	mark("Activity", "mach_id")
	mark("Routing", "mach_id")
	// Give value its finite domain so satisfiability is decidable.
	act, _ := db.Catalog().Get("Activity")
	act.Schema.Columns[1].Domain = mustStringDomain("busy", "idle")
	return db
}

func generate(t *testing.T, db *engine.DB, sql string) *Generated {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Generate(sel, db.Catalog(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// run executes the generated recency query and returns the sorted sids.
func run(t *testing.T, db *engine.DB, g *Generated) []string {
	t.Helper()
	if g.Empty {
		return nil
	}
	res, err := db.QueryStmtAt(g.Stmt, db.Snapshot())
	if err != nil {
		t.Fatalf("running %q: %v", g.SQL, err)
	}
	var sids []string
	for _, row := range res.Rows {
		sids = append(sids, row[0].Str())
	}
	sortStrings(sids)
	return sids
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestPaperQ1Example(t *testing.T) {
	// §4.1.1: mach_id IN ('m1','m2') AND value = 'idle' over Activity.
	// Theorem 3 applies: minimal set = {m1, m2}.
	db := paperDB(t)
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'`)
	if !g.Minimal {
		t.Errorf("should be minimal; reasons: %v", g.Reasons)
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m2" {
		t.Errorf("relevant = %v, want [m1 m2]", got)
	}
	if !strings.Contains(g.SQL, "trac_h.sid IN ('m1', 'm2')") {
		t.Errorf("Ps not substituted onto Heartbeat: %s", g.SQL)
	}
	if strings.Contains(g.SQL, "value") {
		t.Errorf("Pr should be dropped from the recency query: %s", g.SQL)
	}
}

func TestPaperQ2JoinExample(t *testing.T) {
	// §4.1.2 worked example: S(Q2) = S(Q2,R) ∪ S(Q2,A) = {m1} ∪ {m3}.
	db := paperDB(t)
	g := generate(t, db, `
		SELECT A.mach_id FROM Routing R, Activity A
		WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`)
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m3" {
		t.Errorf("relevant = %v, want [m1 m3]", got)
	}
	// The R arm has a Jrm (R.neighbor = A.mach_id touches R's regular
	// column), so minimality is lost exactly as the paper notes.
	if g.Minimal {
		t.Error("Q2 should not be guaranteed minimal (Jrm on R)")
	}
	foundJrmReason := false
	for _, r := range g.Reasons {
		if strings.Contains(r, "regular-column join") {
			foundJrmReason = true
		}
	}
	if !foundJrmReason {
		t.Errorf("expected Jrm reason, got %v", g.Reasons)
	}
	// Two arms: via R and via A.
	if len(g.Arms) != 2 {
		t.Fatalf("arms = %d, want 2", len(g.Arms))
	}
	// The A arm is minimal (Theorem 4 applies).
	var armA *ArmInfo
	for i := range g.Arms {
		if g.Arms[i].Relation == "A" {
			armA = &g.Arms[i]
		}
	}
	if armA == nil || !armA.Minimal {
		t.Errorf("A arm should be minimal: %+v", g.Arms)
	}
}

func TestQ2ArmViaAIsSemijoin(t *testing.T) {
	// The arm via A must read: sources H.sid such that a Routing row with
	// mach_id='m1' has neighbor = H.sid. Evaluates to {m3} on Table 2.
	db := paperDB(t)
	g := generate(t, db, `
		SELECT A.mach_id FROM Routing R, Activity A
		WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`)
	var armA string
	for _, a := range g.Arms {
		if a.Relation == "A" {
			armA = a.SQL
		}
	}
	if !strings.Contains(armA, "R.neighbor = trac_h.sid") {
		t.Errorf("A arm should substitute A.mach_id -> trac_h.sid in the join: %s", armA)
	}
	if !strings.Contains(armA, "R.mach_id = 'm1'") {
		t.Errorf("A arm should keep R's selection in Po: %s", armA)
	}
	if strings.Contains(armA, "idle") {
		t.Errorf("A arm must drop A's regular predicate: %s", armA)
	}
}

func TestNoWhereReportsAllSources(t *testing.T) {
	db := paperDB(t)
	g := generate(t, db, `SELECT mach_id FROM Activity`)
	if !g.Minimal {
		t.Errorf("no-WHERE query is trivially minimal; reasons: %v", g.Reasons)
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m2,m3" {
		t.Errorf("relevant = %v, want all", got)
	}
}

func TestUnsatisfiableDisjunctDropped(t *testing.T) {
	db := paperDB(t)
	// value = 'down' is outside the finite domain: Corollary 2 -> empty.
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE value = 'down'`)
	if !g.Empty {
		t.Fatalf("expected Empty, got SQL %q", g.SQL)
	}
	if g.SkippedDisjuncts != 1 {
		t.Errorf("SkippedDisjuncts = %d", g.SkippedDisjuncts)
	}
	// Constant contradiction too.
	g = generate(t, db, `SELECT mach_id FROM Activity WHERE 1 = 2 AND mach_id = 'm1'`)
	if !g.Empty {
		t.Errorf("constant-false predicate should yield Empty, got %q", g.SQL)
	}
}

func TestDisjunctionUnionsArms(t *testing.T) {
	db := paperDB(t)
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE (mach_id = 'm1' AND value = 'idle') OR (mach_id = 'm2' AND value = 'busy')`)
	if !g.Minimal {
		t.Errorf("both disjuncts meet Theorem 3; reasons: %v", g.Reasons)
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m2" {
		t.Errorf("relevant = %v", got)
	}
	if !strings.Contains(g.SQL, "UNION") {
		t.Errorf("expected a UNION of arms: %s", g.SQL)
	}
}

func TestPartiallyUnsatisfiableDisjunction(t *testing.T) {
	db := paperDB(t)
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE (mach_id = 'm1' AND value = 'down') OR (mach_id = 'm2' AND value = 'busy')`)
	if g.SkippedDisjuncts != 1 {
		t.Errorf("SkippedDisjuncts = %d, want 1", g.SkippedDisjuncts)
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m2" {
		t.Errorf("relevant = %v, want [m2]", got)
	}
}

func TestMixedPredicateLosesMinimality(t *testing.T) {
	db := paperDB(t)
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE mach_id = value`)
	if g.Minimal {
		t.Error("mixed predicate must lose the minimality guarantee")
	}
	// Still a complete upper bound: all sources.
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m2,m3" {
		t.Errorf("upper bound = %v, want all sources", got)
	}
}

func TestUnknownSatisfiabilityLosesMinimality(t *testing.T) {
	db := paperDB(t)
	// event_time is unbounded; a cross-column regular predicate defeats the
	// checker -> Unknown -> upper bound.
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE mach_id = 'm1' AND event_time = event_time`)
	if g.Minimal {
		t.Error("unknown satisfiability must lose minimality")
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1" {
		t.Errorf("upper bound = %v, want [m1]", got)
	}
}

func TestEmptyOtherRelationMakesArmEmpty(t *testing.T) {
	// Definition 2 requires actual tuples in the other relations: with an
	// empty Routing table, nothing is relevant via Activity for a join
	// query (and nothing via Routing either if Activity's predicates use
	// actual rows... via Routing needs Activity rows, which exist).
	db := paperDB(t)
	db.MustExec(`DELETE FROM Routing`)
	g := generate(t, db, `
		SELECT A.mach_id FROM Routing R, Activity A
		WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`)
	got := run(t, db, g)
	// Via A: requires a Routing row -> none. Via R: requires an Activity
	// row satisfying Po (A.value='idle') -> exists, and Ps(R)={m1}.
	if strings.Join(got, ",") != "m1" {
		t.Errorf("relevant = %v, want [m1]", got)
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := paperDB(t)
	g := generate(t, db, `
		SELECT a.mach_id FROM Activity a, Activity b
		WHERE a.mach_id = 'm1' AND b.mach_id = 'm2' AND a.value = b.value`)
	// Both arms exist; each loses minimality through the Jrm a.value=b.value.
	if g.Minimal {
		t.Error("self-join with value equality is not guaranteed minimal")
	}
	got := run(t, db, g)
	if strings.Join(got, ",") != "m1,m2" {
		t.Errorf("relevant = %v, want [m1 m2]", got)
	}
}

func TestHeartbeatAliasCollision(t *testing.T) {
	db := paperDB(t)
	g := generate(t, db, `SELECT trac_h.mach_id FROM Activity trac_h WHERE trac_h.mach_id = 'm1'`)
	if strings.Contains(g.SQL, "trac_h.sid IN") {
		t.Errorf("alias should have been renamed: %s", g.SQL)
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1" {
		t.Errorf("relevant = %v", got)
	}
}

func TestUnionQueryRejected(t *testing.T) {
	db := paperDB(t)
	sel, err := sqlparser.ParseSelect(`SELECT mach_id FROM Activity UNION SELECT mach_id FROM Routing`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(sel, db.Catalog(), Options{}); err == nil {
		t.Error("UNION user queries should be rejected (not a single SPJ block)")
	}
}

func TestNaiveSQL(t *testing.T) {
	sql := NaiveSQL(Options{})
	if !strings.Contains(sql, "Heartbeat") || !strings.Contains(sql, "sid") {
		t.Errorf("naive SQL = %q", sql)
	}
}

func TestGeneratedSQLReparses(t *testing.T) {
	db := paperDB(t)
	queries := []string{
		`SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'`,
		`SELECT A.mach_id FROM Routing R, Activity A WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`,
		`SELECT mach_id FROM Activity WHERE mach_id = 'm1' OR value = 'busy'`,
		`SELECT mach_id FROM Activity WHERE NOT (mach_id = 'm1')`,
		`SELECT mach_id FROM Activity WHERE event_time > '2006-03-01 00:00:00'`,
	}
	for _, q := range queries {
		g := generate(t, db, q)
		if g.Empty {
			t.Errorf("unexpected Empty for %q", q)
			continue
		}
		if _, err := sqlparser.ParseSelect(g.SQL); err != nil {
			t.Errorf("generated SQL for %q does not re-parse: %v\n%s", q, err, g.SQL)
		}
	}
}

func TestDataSourceOnlyDisjunctKeepsMinimality(t *testing.T) {
	db := paperDB(t)
	// Pure source-column predicate: trivially minimal, even with LIKE.
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE mach_id LIKE 'm%'`)
	if !g.Minimal {
		t.Errorf("source-only LIKE should be minimal; reasons: %v", g.Reasons)
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m2,m3" {
		t.Errorf("relevant = %v", got)
	}
}

func TestConstantOnlyQuery(t *testing.T) {
	db := paperDB(t)
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE 1 = 1`)
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m2,m3" {
		t.Errorf("relevant = %v, want all sources", got)
	}
}

func TestAggregateQueriesMinimality(t *testing.T) {
	db := paperDB(t)
	// COUNT(*) with a source predicate: any qualifying insert changes the
	// count, so the minimality guarantee survives (the paper's Q1 shape).
	g := generate(t, db, `SELECT COUNT(*) FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'`)
	if !g.Minimal {
		t.Errorf("COUNT(*) query should stay minimal: %v", g.Reasons)
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m2" {
		t.Errorf("relevant = %v", got)
	}
	// MIN-only aggregates can absorb updates: downgraded to upper bound.
	g = generate(t, db, `SELECT MIN(event_time) FROM Activity WHERE mach_id = 'm1'`)
	if g.Minimal {
		t.Error("MIN-only query must be downgraded")
	}
	// GROUP BY: downgraded, but still complete.
	g = generate(t, db, `SELECT value, COUNT(*) FROM Activity WHERE mach_id = 'm1' GROUP BY value`)
	if g.Minimal {
		t.Error("GROUP BY query must be downgraded")
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1" {
		t.Errorf("relevant = %v", got)
	}
	// HAVING: downgraded with a HAVING-specific reason.
	g = generate(t, db, `SELECT value FROM Activity GROUP BY value HAVING COUNT(*) > 1`)
	if g.Minimal {
		t.Error("HAVING query must be downgraded")
	}
	foundReason := false
	for _, r := range g.Reasons {
		if strings.Contains(r, "SPJ core") {
			foundReason = true
		}
	}
	if !foundReason {
		t.Errorf("reasons = %v", g.Reasons)
	}
}

func TestDNFBlowUpFallsBackToAllSources(t *testing.T) {
	db := paperDB(t)
	// 11 conjoined (a OR b) factors expand to 2^11 conjuncts — beyond the
	// DNF guard. The generator must fall back to the all-sources upper
	// bound rather than fail.
	var parts []string
	for i := 0; i < 11; i++ {
		parts = append(parts, "(mach_id = 'm1' OR value = 'idle')")
	}
	g := generate(t, db, `SELECT mach_id FROM Activity WHERE `+strings.Join(parts, " AND "))
	if g.Empty {
		t.Fatal("fallback must not be empty")
	}
	if g.Minimal {
		t.Error("fallback is an upper bound")
	}
	foundReason := false
	for _, r := range g.Reasons {
		if strings.Contains(r, "DNF") {
			foundReason = true
		}
	}
	if !foundReason {
		t.Errorf("reasons = %v", g.Reasons)
	}
	if got := run(t, db, g); strings.Join(got, ",") != "m1,m2,m3" {
		t.Errorf("fallback should report all sources, got %v", got)
	}
}
