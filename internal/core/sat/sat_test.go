package sat

import (
	"testing"

	"trac/internal/core/dnf"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/types"
)

// testTable builds Activity(mach_id[src] TEXT, value TEXT{idle,busy},
// event_time TIMESTAMP, slot INT[0..9], load FLOAT).
func testTable(t *testing.T) *storage.Table {
	t.Helper()
	slotDomain, _ := types.IntRangeDomain(0, 9)
	s, err := storage.NewSchema([]storage.Column{
		{Name: "mach_id", Kind: types.KindString},
		{Name: "value", Kind: types.KindString, Domain: types.FiniteStringDomain("busy", "idle")},
		{Name: "event_time", Kind: types.KindTime},
		{Name: "slot", Kind: types.KindInt, Domain: slotDomain},
		{Name: "load", Kind: types.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetSourceColumn("mach_id")
	return storage.NewTable("Activity", s)
}

func check(t *testing.T, tbl *storage.Table, src string) Result {
	t.Helper()
	e, err := sqlparser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	d, err := dnf.Convert(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 {
		t.Fatalf("%q is not conjunctive", src)
	}
	return CheckRegular(d[0], "A", tbl)
}

func TestSatisfiableCases(t *testing.T) {
	tbl := testTable(t)
	cases := []string{
		"value = 'idle'",
		"value IN ('idle', 'busy')",
		"value <> 'idle'", // busy remains
		"slot = 5",
		"slot BETWEEN 3 AND 7",
		"slot > 2 AND slot < 5",
		"load > 0.5",
		"load > 0.5 AND load < 0.6",
		"event_time > TIMESTAMP '2006-03-15 00:00:00'",
		"event_time > '2006-03-15 00:00:00' AND event_time < '2006-03-16 00:00:00'",
		"value = 'idle' AND slot = 3 AND load <= 1.0",
		"slot >= 9", // boundary of [0..9]
		"load <> 0.0",
		"value IS NOT NULL",
	}
	for _, src := range cases {
		if got := check(t, tbl, src); got != Sat {
			t.Errorf("CheckRegular(%q) = %v, want satisfiable", src, got)
		}
	}
}

func TestUnsatisfiableCases(t *testing.T) {
	tbl := testTable(t)
	cases := []string{
		"value = 'down'",                    // outside finite domain
		"value = 'idle' AND value = 'busy'", // contradictory points
		"value IN ('idle') AND value IN ('busy')",
		"value = 'idle' AND value <> 'idle'",
		"slot = 42",             // outside int range
		"slot > 5 AND slot < 5", // empty interval
		"slot > 5 AND slot < 6", // integer gap
		"slot BETWEEN 7 AND 3",  // inverted BETWEEN
		"load > 1.0 AND load < 0.5",
		"load = 0.5 AND load = 0.7",
		"event_time > '2006-03-16 00:00:00' AND event_time < '2006-03-15 00:00:00'",
		"value IS NULL", // domains exclude NULL
		"slot >= 10",    // beyond range max
	}
	for _, src := range cases {
		if got := check(t, tbl, src); got != Unsat {
			t.Errorf("CheckRegular(%q) = %v, want unsatisfiable", src, got)
		}
	}
}

func TestUnknownIsConservative(t *testing.T) {
	tbl := testTable(t)
	// Cross-column terms and complex shapes: not proven either way.
	cases := []string{
		"load = load",    // same column both sides (not col-op-lit)
		"load + 1 > 2",   // arithmetic on column
		"mach_id > load", // cross-column (also mixed kinds)
	}
	for _, src := range cases {
		if got := check(t, tbl, src); got == Unsat {
			t.Errorf("CheckRegular(%q) = Unsat; must never be proven unsat", src)
		}
	}
}

func TestLikeHandling(t *testing.T) {
	tbl := testTable(t)
	// Positive LIKE over an unbounded string column: witness instantiation
	// proves Sat.
	if got := check(t, tbl, "mach_id LIKE 'Tao%'"); got != Sat {
		t.Errorf("LIKE 'Tao%%' = %v, want Sat", got)
	}
	if got := check(t, tbl, "mach_id LIKE 'Tao_'"); got != Sat {
		t.Errorf("LIKE 'Tao_' = %v, want Sat", got)
	}
	// LIKE over the finite domain: enumeration is exact.
	if got := check(t, tbl, "value LIKE 'i%'"); got != Sat {
		t.Errorf("value LIKE 'i%%' = %v, want Sat", got)
	}
	if got := check(t, tbl, "value LIKE 'z%'"); got != Unsat {
		t.Errorf("value LIKE 'z%%' = %v, want Unsat", got)
	}
	// Contradictory LIKE + equality on unbounded column: at best Unknown,
	// never Sat (no witness passes), never wrongly Unsat-proven... actually
	// equality gives a point constraint, and the point fails the pattern,
	// so Unsat is provable here.
	if got := check(t, tbl, "mach_id = 'm1' AND mach_id LIKE 'Tao%'"); got != Unsat {
		t.Errorf("point + failing LIKE = %v, want Unsat", got)
	}
}

func TestPointPlusRange(t *testing.T) {
	tbl := testTable(t)
	if got := check(t, tbl, "load = 0.5 AND load > 0.7"); got != Unsat {
		t.Errorf("point outside range = %v, want Unsat", got)
	}
	if got := check(t, tbl, "load = 0.8 AND load > 0.7"); got != Sat {
		t.Errorf("point inside range = %v, want Sat", got)
	}
}

func TestEmptyConjunction(t *testing.T) {
	tbl := testTable(t)
	if got := CheckRegular(nil, "A", tbl); got != Sat {
		t.Errorf("empty conjunction = %v, want Sat", got)
	}
}

func TestCheckConstants(t *testing.T) {
	mk := func(src string) []sqlparser.Expr {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := dnf.Convert(e)
		return d[0]
	}
	if got := CheckConstants(mk("1 = 2")); got != Unsat {
		t.Errorf("1 = 2 -> %v", got)
	}
	if got := CheckConstants(mk("1 = 1 AND 'a' = 'a'")); got != Sat {
		t.Errorf("tautology -> %v", got)
	}
	if got := CheckConstants(mk("1 = 1 AND 2 = 3")); got != Unsat {
		t.Errorf("mixed -> %v", got)
	}
	if got := CheckConstants(nil); got != Sat {
		t.Errorf("empty -> %v", got)
	}
	if got := CheckConstants(mk("NULL = 1")); got != Unsat {
		t.Errorf("NULL comparison filters all rows -> %v", got)
	}
}

func TestResultString(t *testing.T) {
	if Sat.String() != "satisfiable" || Unsat.String() != "unsatisfiable" || Unknown.String() != "unknown" {
		t.Error("Result.String() labels wrong")
	}
}

func TestStringBoundsNeverFalselyUnsat(t *testing.T) {
	tbl := testTable(t)
	// Exclusive string bounds that are adjacent: provably empty is hard for
	// strings, so the checker must answer Sat (if a witness exists) or
	// Unknown — never Unsat when a value might exist.
	if got := check(t, tbl, "mach_id > 'a' AND mach_id < 'a'"); got != Unsat {
		// lo > hi IS provable even for strings.
		t.Errorf("inverted string interval = %v, want Unsat", got)
	}
	if got := check(t, tbl, "mach_id > 'a' AND mach_id < 'b'"); got != Sat {
		t.Errorf("open string interval = %v, want Sat (witness a\\x00)", got)
	}
}

func TestEmptyIntervalEdgeCases(t *testing.T) {
	tbl := testTable(t)
	cases := []struct {
		src  string
		want Result
	}{
		// Equal bounds, one exclusive: empty.
		{"load >= 0.5 AND load < 0.5", Unsat},
		{"load > 0.5 AND load <= 0.5", Unsat},
		// Equal inclusive bounds: the point remains.
		{"load >= 0.5 AND load <= 0.5", Sat},
		// Int-range domain edges fold into the interval.
		{"slot >= 8 AND slot <= 12", Sat}, // clipped to [8,9]
		{"slot > 9", Unsat},               // above the domain max
		{"slot < 0", Unsat},               // below the domain min
		{"slot > 8 AND slot < 9", Unsat},  // integer gap within domain
		// Time interval edges.
		{"event_time >= '2006-03-15 00:00:00' AND event_time <= '2006-03-15 00:00:00'", Sat},
		{"event_time > '2006-03-15 00:00:00' AND event_time <= '2006-03-15 00:00:00'", Unsat},
	}
	for _, c := range cases {
		if got := check(t, tbl, c.src); got != c.want {
			t.Errorf("CheckRegular(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestCheckConstantsMoreShapes(t *testing.T) {
	mk := func(src string) []sqlparser.Expr {
		e, err := sqlparser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		d, _ := dnf.Convert(e)
		return d[0]
	}
	// Literal TRUE/FALSE terms.
	if got := CheckConstants(mk("TRUE")); got != Sat {
		t.Errorf("TRUE -> %v", got)
	}
	if got := CheckConstants(mk("FALSE")); got != Unsat {
		t.Errorf("FALSE -> %v", got)
	}
	// All comparison operators on constants.
	for src, want := range map[string]Result{
		"1 < 2":     Sat,
		"2 <= 1":    Unsat,
		"3 > 1":     Sat,
		"1 >= 3":    Unsat,
		"1 <> 1":    Unsat,
		"'a' < 'b'": Sat,
	} {
		if got := CheckConstants(mk(src)); got != want {
			t.Errorf("CheckConstants(%q) = %v, want %v", src, got, want)
		}
	}
	// Incomparable constant kinds -> not provable.
	if got := CheckConstants(mk("'a' = 1")); got == Sat {
		t.Errorf("incomparable constants must not be Sat: %v", got)
	}
	// Non-literal shapes (arithmetic) -> Unknown.
	if got := CheckConstants(mk("1 + 1 = 2")); got != Unknown {
		t.Errorf("arithmetic constants -> %v, want unknown", got)
	}
}
