// Package sat decides satisfiability of conjunctions of basic terms over
// column domains. The recency-query generator uses it two ways:
//
//   - Theorems 3 and 4 require the regular-column-only predicates (Pr) to be
//     satisfiable over the cross product of the column domains for the
//     generated recency query to be the exact minimum. Sat here upgrades the
//     arm from "upper bound" to "minimum".
//   - Corollaries 2 and 6: an unsatisfiable disjunct contributes the empty
//     set of relevant sources, so its arm is dropped entirely.
//
// Computing satisfiability exactly is NP-hard in general (that is the
// paper's Theorem 2), so this checker is deliberately three-valued: Sat and
// Unsat are proven; everything else is Unknown, which downstream code treats
// as "upper bound only". Unknown never compromises completeness.
//
// The method is witness-based: for each column, gather every literal
// mentioned by that column's terms plus systematic perturbations (±1,
// successors, LIKE-pattern instantiations, finite-domain members) and test
// the conjunction at each witness. A passing witness proves Sat. Unsat is
// only claimed on one of three sound grounds: a fully enumerated finite
// domain with no passing member, a positive point constraint set with no
// passing point, or a provably empty bound interval.
package sat

import (
	"strings"
	"time"

	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/types"
)

// Result is a three-valued satisfiability verdict.
type Result uint8

// Verdicts.
const (
	Unknown Result = iota
	Sat
	Unsat
)

// String renders the verdict.
func (r Result) String() string {
	switch r {
	case Sat:
		return "satisfiable"
	case Unsat:
		return "unsatisfiable"
	default:
		return "unknown"
	}
}

// enumLimit bounds how many finite-domain members we are willing to test
// exhaustively per column.
const enumLimit = 4096

// CheckRegular decides satisfiability of a conjunction of regular-column
// selection terms for one relation, over the relation's column domains.
// Terms must each reference only columns of the bound table (the classifier
// guarantees this for Pr).
func CheckRegular(terms []sqlparser.Expr, binding string, tbl *storage.Table) Result {
	if len(terms) == 0 {
		return Sat // an empty conjunction is TRUE
	}
	byCol := make(map[int][]sqlparser.Expr)
	hasComplex := false
	for _, term := range terms {
		cols := referencedColumns(term, binding, tbl)
		if len(cols) != 1 {
			hasComplex = true
			continue
		}
		byCol[cols[0]] = append(byCol[cols[0]], term)
	}
	allSat := !hasComplex
	for col, colTerms := range byCol {
		switch checkColumn(colTerms, binding, tbl, col) {
		case Unsat:
			// One impossible column makes the whole conjunction impossible,
			// regardless of unresolved complex terms.
			return Unsat
		case Unknown:
			allSat = false
		}
	}
	if allSat {
		return Sat
	}
	return Unknown
}

// CheckConstants evaluates column-free terms (e.g. 1 = 2). Unsat if any is
// provably false; Sat if all are provably true.
func CheckConstants(terms []sqlparser.Expr) Result {
	allTrue := true
	for _, term := range terms {
		v, ok := evalConstant(term)
		if !ok {
			allTrue = false
			continue
		}
		if v.Kind() == types.KindBool && !v.Bool() {
			return Unsat
		}
		if v.IsNull() {
			// UNKNOWN filters every row, same as FALSE for WHERE purposes.
			return Unsat
		}
		if v.Kind() != types.KindBool {
			allTrue = false
		}
	}
	if allTrue {
		return Sat
	}
	return Unknown
}

// referencedColumns lists the distinct column indexes of tbl referenced by
// the term.
func referencedColumns(term sqlparser.Expr, binding string, tbl *storage.Table) []int {
	set := make(map[int]bool)
	sqlparser.WalkExpr(term, func(e sqlparser.Expr) bool {
		if cr, ok := e.(*sqlparser.ColumnRef); ok {
			if cr.Table == "" || strings.EqualFold(cr.Table, binding) {
				if ci := tbl.Schema.ColumnIndex(cr.Column); ci >= 0 {
					set[ci] = true
				}
			}
		}
		return true
	})
	out := make([]int, 0, len(set))
	for ci := range set {
		out = append(out, ci)
	}
	return out
}

// checkColumn decides satisfiability of the terms constraining one column.
func checkColumn(terms []sqlparser.Expr, binding string, tbl *storage.Table, col int) Result {
	column := tbl.Schema.Columns[col]
	shape := analyzeShape(terms, binding, tbl, col)

	// Witness candidates.
	var candidates []types.Value
	exactEnum := false
	if n, ok := column.Domain.Size(); ok && n <= enumLimit {
		if vals, ok := column.Domain.Enumerate(); ok {
			candidates = vals
			exactEnum = true
		}
	}
	if !exactEnum {
		candidates = shape.witnesses(column)
	}

	sawUnknownEval := false
	for _, cand := range candidates {
		if !column.Domain.Contains(cand) {
			continue
		}
		pass := true
		for _, term := range terms {
			v, ok := evalTermAt(term, binding, tbl, col, cand)
			if !ok {
				sawUnknownEval = true
				pass = false
				break
			}
			if !v {
				pass = false
				break
			}
		}
		if pass {
			return Sat
		}
	}

	if sawUnknownEval {
		return Unknown
	}
	// No witness passed, and every failure was definite; when is that a
	// proof of Unsat?
	switch {
	case exactEnum:
		// The whole domain was tested.
		return Unsat
	case len(shape.points) > 0:
		// A positive point constraint bounds the satisfying set by the
		// points, all of which were candidates and failed definitively.
		return Unsat
	case shape.simple && shape.emptyInterval(column):
		// The interval proof additionally needs every term to have been a
		// recognized bound/point/exclusion shape.
		return Unsat
	default:
		return Unknown
	}
}

// colShape summarizes the simple constraints found on a column.
type colShape struct {
	simple   bool // every term had a recognized single-column shape
	points   []types.Value
	lits     []types.Value // every literal seen (bounds, exclusions, ...)
	loSet    bool
	lo       types.Value
	loIncl   bool
	hiSet    bool
	hi       types.Value
	hiIncl   bool
	likePats []string
}

func analyzeShape(terms []sqlparser.Expr, binding string, tbl *storage.Table, col int) *colShape {
	s := &colShape{simple: true}
	kind := tbl.Schema.Columns[col].Kind
	colRefOK := func(e sqlparser.Expr) bool {
		cr, ok := e.(*sqlparser.ColumnRef)
		return ok && (cr.Table == "" || strings.EqualFold(cr.Table, binding)) &&
			tbl.Schema.ColumnIndex(cr.Column) == col
	}
	lit := func(e sqlparser.Expr) (types.Value, bool) {
		l, ok := e.(*sqlparser.Literal)
		if !ok || l.Val.IsNull() {
			return types.Null, false
		}
		return coerce(l.Val, kind), true
	}
	tightenLo := func(v types.Value, incl bool) {
		if !s.loSet || types.Less(s.lo, v) || (types.Equal(s.lo, v) && !incl) {
			s.loSet, s.lo, s.loIncl = true, v, incl
		}
	}
	tightenHi := func(v types.Value, incl bool) {
		if !s.hiSet || types.Less(v, s.hi) || (types.Equal(s.hi, v) && !incl) {
			s.hiSet, s.hi, s.hiIncl = true, v, incl
		}
	}

	for _, term := range terms {
		switch n := term.(type) {
		case *sqlparser.Comparison:
			var v types.Value
			var ok bool
			op := n.Op
			if colRefOK(n.Left) {
				v, ok = lit(n.Right)
			} else if colRefOK(n.Right) {
				v, ok = lit(n.Left)
				op = op.Flip()
			}
			if !ok {
				s.simple = false
				continue
			}
			s.lits = append(s.lits, v)
			switch op {
			case sqlparser.CmpEq:
				s.points = append(s.points, v)
			case sqlparser.CmpLt:
				tightenHi(v, false)
			case sqlparser.CmpLe:
				tightenHi(v, true)
			case sqlparser.CmpGt:
				tightenLo(v, false)
			case sqlparser.CmpGe:
				tightenLo(v, true)
			}
			// CmpNe is just an exclusion; witnesses handle it.
		case *sqlparser.In:
			if !colRefOK(n.Expr) {
				s.simple = false
				continue
			}
			var vals []types.Value
			usable := true
			for _, item := range n.List {
				v, ok := lit(item)
				if !ok {
					usable = false
					break
				}
				vals = append(vals, v)
			}
			if !usable {
				s.simple = false
				continue
			}
			s.lits = append(s.lits, vals...)
			if !n.Negated {
				if len(s.points) == 0 {
					s.points = append(s.points, vals...)
				}
				// (If points already exist the intersection is what
				// matters; the existing points remain the candidate set.)
			}
		case *sqlparser.Between:
			if !colRefOK(n.Expr) {
				s.simple = false
				continue
			}
			loV, ok1 := lit(n.Lo)
			hiV, ok2 := lit(n.Hi)
			if !ok1 || !ok2 {
				s.simple = false
				continue
			}
			s.lits = append(s.lits, loV, hiV)
			if n.Negated {
				// A NOT BETWEEN keeps two open ends; witnesses handle it,
				// but it breaks the simple-interval story.
				s.simple = false
				continue
			}
			tightenLo(loV, true)
			tightenHi(hiV, true)
		case *sqlparser.Like:
			if !colRefOK(n.Expr) {
				s.simple = false
				continue
			}
			p, ok := n.Pattern.(*sqlparser.Literal)
			if !ok || p.Val.Kind() != types.KindString {
				s.simple = false
				continue
			}
			s.likePats = append(s.likePats, p.Val.Str())
			s.simple = false // LIKE never participates in Unsat proofs
		case *sqlparser.IsNull:
			// Domains exclude NULL: IS NULL is unsatisfiable over potential
			// tuples; IS NOT NULL is a tautology. Both are simple.
			if !colRefOK(n.Expr) {
				s.simple = false
			}
		default:
			s.simple = false
		}
	}
	return s
}

// witnesses builds the candidate set for an infinite domain.
func (s *colShape) witnesses(column storage.Column) []types.Value {
	var out []types.Value
	add := func(v types.Value) {
		if !v.IsNull() {
			out = append(out, v)
		}
	}
	for _, v := range s.points {
		add(v)
	}
	for _, v := range s.lits {
		add(v)
		add(perturb(v, +1))
		add(perturb(v, -1))
	}
	// Midpoint of the bound interval, when both ends are numeric/time.
	if s.loSet && s.hiSet {
		add(midpoint(s.lo, s.hi))
	}
	// LIKE pattern instantiations: '%'→"", '%'→"w", '_'→"a".
	for _, p := range s.likePats {
		add(types.NewString(instantiate(p, "")))
		add(types.NewString(instantiate(p, "w")))
	}
	// Generic fallbacks for the unconstrained case.
	switch column.Kind {
	case types.KindInt:
		add(types.NewInt(0))
	case types.KindFloat:
		add(types.NewFloat(0))
	case types.KindString:
		add(types.NewString("w"))
	case types.KindTime:
		add(types.NewTime(time.Unix(0, 0)))
	case types.KindBool:
		add(types.NewBool(true))
		add(types.NewBool(false))
	}
	return out
}

// emptyInterval reports whether the collected bounds provably exclude every
// domain value.
func (s *colShape) emptyInterval(column storage.Column) bool {
	lo, loIncl := s.lo, s.loIncl
	hi, hiIncl := s.hi, s.hiIncl
	loSet, hiSet := s.loSet, s.hiSet
	// Fold in int-range domain edges.
	if column.Domain.Kind == types.DomainIntRange {
		dLo, dHi := types.NewInt(column.Domain.MinInt), types.NewInt(column.Domain.MaxInt)
		if !loSet || types.Less(lo, dLo) {
			lo, loIncl, loSet = dLo, true, true
		}
		if !hiSet || types.Less(dHi, hi) {
			hi, hiIncl, hiSet = dHi, true, true
		}
	}
	if !loSet || !hiSet {
		return false
	}
	if types.Less(hi, lo) {
		return true
	}
	if types.Equal(lo, hi) && !(loIncl && hiIncl) {
		return true
	}
	// Integer gap: (lo, hi) exclusive with no integer strictly between.
	if column.Kind == types.KindInt && lo.Kind() == types.KindInt && hi.Kind() == types.KindInt {
		min := lo.Int()
		if !loIncl {
			min++
		}
		max := hi.Int()
		if !hiIncl {
			max--
		}
		return max < min
	}
	return false
}

// perturb nudges a value to probe strict-inequality boundaries.
func perturb(v types.Value, dir int64) types.Value {
	switch v.Kind() {
	case types.KindInt:
		return types.NewInt(v.Int() + dir)
	case types.KindFloat:
		return types.NewFloat(v.Float() + float64(dir)*0.5)
	case types.KindTime:
		return types.NewTimeNanos(v.TimeNanos() + dir*int64(time.Second))
	case types.KindString:
		if dir > 0 {
			return types.NewString(v.Str() + "\x00")
		}
		str := v.Str()
		if str == "" {
			return types.Null
		}
		return types.NewString(str[:len(str)-1])
	default:
		return types.Null
	}
}

// midpoint returns a value between a and b for dense kinds.
func midpoint(a, b types.Value) types.Value {
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		m := (af + bf) / 2
		if a.Kind() == types.KindInt && b.Kind() == types.KindInt {
			return types.NewInt(int64(m))
		}
		return types.NewFloat(m)
	}
	if a.Kind() == types.KindTime && b.Kind() == types.KindTime {
		return types.NewTimeNanos(a.TimeNanos()/2 + b.TimeNanos()/2)
	}
	if a.Kind() == types.KindString {
		return types.NewString(a.Str() + "\x00")
	}
	return types.Null
}

// instantiate replaces LIKE wildcards to produce a witness string.
func instantiate(pattern, percentFill string) string {
	var sb strings.Builder
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			sb.WriteString(percentFill)
		case '_':
			sb.WriteByte('a')
		default:
			sb.WriteByte(pattern[i])
		}
	}
	return sb.String()
}

// coerce adapts a literal to the column kind (string → timestamp).
func coerce(v types.Value, kind types.Kind) types.Value {
	if kind == types.KindTime && v.Kind() == types.KindString {
		if ts, err := types.ParseTime(v.Str()); err == nil {
			return types.NewTime(ts)
		}
	}
	return v
}

// evalTermAt evaluates a single-column basic term with the column bound to
// value v. ok=false means the term shape is not interpretable.
func evalTermAt(term sqlparser.Expr, binding string, tbl *storage.Table, col int, v types.Value) (bool, bool) {
	kind := tbl.Schema.Columns[col].Kind
	colRefOK := func(e sqlparser.Expr) bool {
		cr, ok := e.(*sqlparser.ColumnRef)
		return ok && (cr.Table == "" || strings.EqualFold(cr.Table, binding)) &&
			tbl.Schema.ColumnIndex(cr.Column) == col
	}
	litVal := func(e sqlparser.Expr) (types.Value, bool) {
		l, ok := e.(*sqlparser.Literal)
		if !ok || l.Val.IsNull() {
			return types.Null, false
		}
		return coerce(l.Val, kind), true
	}
	switch n := term.(type) {
	case *sqlparser.Comparison:
		var other types.Value
		var ok bool
		op := n.Op
		if colRefOK(n.Left) {
			other, ok = litVal(n.Right)
		} else if colRefOK(n.Right) {
			other, ok = litVal(n.Left)
			op = op.Flip()
		}
		if !ok {
			return false, false
		}
		cmp, err := types.Compare(v, other)
		if err != nil {
			return false, true // incomparable -> term is never TRUE at v
		}
		switch op {
		case sqlparser.CmpEq:
			return cmp == 0, true
		case sqlparser.CmpNe:
			return cmp != 0, true
		case sqlparser.CmpLt:
			return cmp < 0, true
		case sqlparser.CmpLe:
			return cmp <= 0, true
		case sqlparser.CmpGt:
			return cmp > 0, true
		case sqlparser.CmpGe:
			return cmp >= 0, true
		}
		return false, false
	case *sqlparser.In:
		if !colRefOK(n.Expr) {
			return false, false
		}
		hit := false
		for _, item := range n.List {
			lv, ok := litVal(item)
			if !ok {
				return false, false
			}
			if types.Equal(v, lv) {
				hit = true
			}
		}
		if n.Negated {
			return !hit, true
		}
		return hit, true
	case *sqlparser.Between:
		if !colRefOK(n.Expr) {
			return false, false
		}
		lo, ok1 := litVal(n.Lo)
		hi, ok2 := litVal(n.Hi)
		if !ok1 || !ok2 {
			return false, false
		}
		cl, err1 := types.Compare(v, lo)
		ch, err2 := types.Compare(v, hi)
		if err1 != nil || err2 != nil {
			return false, true
		}
		in := cl >= 0 && ch <= 0
		if n.Negated {
			return !in, true
		}
		return in, true
	case *sqlparser.Like:
		if !colRefOK(n.Expr) || v.Kind() != types.KindString {
			return false, false
		}
		p, ok := n.Pattern.(*sqlparser.Literal)
		if !ok || p.Val.Kind() != types.KindString {
			return false, false
		}
		m := likeMatch(v.Str(), p.Val.Str())
		if n.Negated {
			return !m, true
		}
		return m, true
	case *sqlparser.IsNull:
		if !colRefOK(n.Expr) {
			return false, false
		}
		// Domain values are never NULL.
		return n.Negated, true
	default:
		return false, false
	}
}

// evalConstant evaluates a column-free term.
func evalConstant(term sqlparser.Expr) (types.Value, bool) {
	switch n := term.(type) {
	case *sqlparser.Literal:
		return n.Val, true
	case *sqlparser.Comparison:
		l, ok1 := n.Left.(*sqlparser.Literal)
		r, ok2 := n.Right.(*sqlparser.Literal)
		if !ok1 || !ok2 {
			return types.Null, false
		}
		if l.Val.IsNull() || r.Val.IsNull() {
			return types.Null, true
		}
		cmp, err := types.Compare(l.Val, r.Val)
		if err != nil {
			return types.Null, false
		}
		var b bool
		switch n.Op {
		case sqlparser.CmpEq:
			b = cmp == 0
		case sqlparser.CmpNe:
			b = cmp != 0
		case sqlparser.CmpLt:
			b = cmp < 0
		case sqlparser.CmpLe:
			b = cmp <= 0
		case sqlparser.CmpGt:
			b = cmp > 0
		case sqlparser.CmpGe:
			b = cmp >= 0
		}
		return types.NewBool(b), true
	default:
		return types.Null, false
	}
}

// likeMatch duplicates the executor's LIKE semantics (kept local to avoid
// an exec dependency from the core analysis layer).
func likeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
