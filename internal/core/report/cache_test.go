package report

import (
	"testing"
)

const idleQuery = `SELECT mach_id FROM Activity WHERE value = 'idle'`

func TestRunHitsPlanCacheOnRepeat(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()

	first, err := Run(sess, idleQuery, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if first.CachedPlan {
		t.Error("first run cannot be a cache hit")
	}
	second, err := Run(sess, idleQuery, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CachedPlan {
		t.Error("second run should hit the plan cache")
	}
	if second.RecencySQL != first.RecencySQL {
		t.Errorf("cached plan changed the recency query:\n%q\n%q", first.RecencySQL, second.RecencySQL)
	}
	if len(second.Normal)+len(second.Exceptional) != len(first.Normal)+len(first.Exceptional) {
		t.Errorf("cached plan changed the relevant set: %d vs %d",
			len(second.Normal)+len(second.Exceptional), len(first.Normal)+len(first.Exceptional))
	}
	// Whitespace variants share the entry.
	third, err := Run(sess, "SELECT   mach_id\nFROM Activity  WHERE value = 'idle'", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !third.CachedPlan {
		t.Error("whitespace variant should hit the cache")
	}
}

func TestDisableCacheSkipsPlanCache(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()
	for i := 0; i < 2; i++ {
		rep, err := Run(sess, idleQuery, Config{DisableCache: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.CachedPlan {
			t.Fatalf("run %d used the cache despite DisableCache", i)
		}
	}
	if n := db.PlanCache().Len(); n != 0 {
		t.Errorf("DisableCache populated the cache: %d entries", n)
	}
}

func TestConfigVariantsDoNotShareEntries(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()
	if _, err := Run(sess, idleQuery, Config{}); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sess, idleQuery, Config{Method: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CachedPlan {
		t.Error("naive config must not reuse the focused entry")
	}
	if rep.Method != Naive || len(rep.Normal)+len(rep.Exceptional) != 11 {
		t.Errorf("naive report wrong: method=%v, sources=%d",
			rep.Method, len(rep.Normal)+len(rep.Exceptional))
	}
}

func TestAddCheckInvalidatesCachedPlan(t *testing.T) {
	// §3.4: a CHECK constraint making the query's predicate unsatisfiable
	// must flip the report to Empty — including for a query whose plan is
	// already cached. A stale cached plan would keep reporting sources.
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()

	before, err := Run(sess, idleQuery, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Empty || len(before.Normal)+len(before.Exceptional) == 0 {
		t.Fatalf("fixture query should have relevant sources: %+v", before)
	}
	// Prime the cache.
	if rep, err := Run(sess, idleQuery, Config{}); err != nil || !rep.CachedPlan {
		t.Fatalf("cache not primed: %v, %v", rep, err)
	}

	// Machines can no longer legally be idle.
	db.MustExec(`DELETE FROM Activity WHERE value = 'idle'`)
	if err := db.AddCheck("Activity", "value <> 'idle'"); err != nil {
		t.Fatal(err)
	}

	after, err := Run(sess, idleQuery, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if after.CachedPlan {
		t.Error("plan survived a CHECK change; catalog version should have evicted it")
	}
	if !after.Empty {
		t.Errorf("regenerated plan should prove the relevant set empty: %+v", after)
	}
}

func TestDDLInvalidatesCachedPlan(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()
	if _, err := Run(sess, idleQuery, Config{}); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE Extra (x TEXT)`)
	rep, err := Run(sess, idleQuery, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CachedPlan {
		t.Error("DDL should invalidate cached recency plans")
	}
	// And the re-cached entry hits again.
	rep, err = Run(sess, idleQuery, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CachedPlan {
		t.Error("re-cached plan should hit")
	}
}

func TestPrepareCachedSharesPrepared(t *testing.T) {
	db := sectionDB(t)
	p1, hit1, err := PrepareCached(db, idleQuery, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p2, hit2, err := PrepareCached(db, idleQuery, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if hit1 || !hit2 {
		t.Errorf("hits = %v, %v; want false, true", hit1, hit2)
	}
	if p1 != p2 {
		t.Error("cache should return the same Prepared instance")
	}
}
