package report

import (
	"strings"
	"sync"
	"testing"
	"time"

	"trac/internal/engine"
	"trac/internal/types"
)

// sectionDB reproduces the §5.1 scenario: 11 sources m1..m11 where m2 is
// ~21 hours behind the others, Activity has m1/m3 idle.
func sectionDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	for _, sql := range []string{
		`CREATE TABLE Activity (mach_id TEXT, value TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`,
		`CREATE INDEX idx_act ON Activity (mach_id)`,
		`INSERT INTO Activity VALUES
			('m1', 'idle', '2006-03-15 14:19:00'),
			('m2', 'busy', '2006-03-14 17:00:00'),
			('m3', 'idle', '2006-03-15 14:39:00')`,
		// m1..m11 heartbeats: m2 exceptional at 2006-03-14 17:23:00, the
		// rest within 2006-03-15 14:20:05 .. 14:40:05.
		`INSERT INTO Heartbeat VALUES
			('m1', '2006-03-15 14:20:05'),
			('m2', '2006-03-14 17:23:00'),
			('m3', '2006-03-15 14:40:05'),
			('m4', '2006-03-15 14:21:05'),
			('m5', '2006-03-15 14:22:05'),
			('m6', '2006-03-15 14:23:05'),
			('m7', '2006-03-15 14:24:05'),
			('m8', '2006-03-15 14:25:05'),
			('m9', '2006-03-15 14:26:05'),
			('m10', '2006-03-15 14:27:05'),
			('m11', '2006-03-15 14:28:05')`,
	} {
		db.MustExec(sql)
	}
	act, _ := db.Catalog().Get("Activity")
	act.Schema.SetSourceColumn("mach_id")
	act.Schema.Columns[1].Domain = types.FiniteStringDomain("busy", "idle")
	return db
}

func TestSection51Transcript(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()

	rep, err := Run(sess, `SELECT mach_id, value FROM Activity A WHERE value = 'idle'`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// User result: m1 and m3 idle.
	if len(rep.Result.Rows) != 2 {
		t.Fatalf("user rows = %v", rep.Result.Rows)
	}
	// The query has no source predicate: all 11 sources relevant; m2 is
	// exceptional (z-score over 3 given ten tight timestamps and one ~21h
	// behind).
	if len(rep.Exceptional) != 1 || rep.Exceptional[0].Sid != "m2" {
		t.Fatalf("exceptional = %+v", rep.Exceptional)
	}
	if len(rep.Normal) != 10 {
		t.Fatalf("normal = %d sources: %+v", len(rep.Normal), rep.Normal)
	}
	// Least and most recent normal sources per the paper.
	if rep.Least.Sid != "m1" || rep.Most.Sid != "m3" {
		t.Errorf("least/most = %s/%s, want m1/m3", rep.Least.Sid, rep.Most.Sid)
	}
	if rep.Bound != 20*time.Minute {
		t.Errorf("bound = %v, want 20m", rep.Bound)
	}
	// Temp tables exist and are queryable.
	res, err := db.Query(`SELECT COUNT(*) FROM ` + rep.NormalTable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 10 {
		t.Errorf("normal temp rows = %v", res.Rows[0][0])
	}
	res, err = db.Query(`SELECT sid FROM ` + rep.ExceptionalTable)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "m2" {
		t.Errorf("exceptional temp rows = %v", res.Rows)
	}

	out := rep.Render()
	for _, want := range []string{
		"Exceptional relevant data sources and timestamps are in the temporary table: sys_temp_e",
		"The least recent data source: m1, 2006-03-15 14:20:05",
		"The most recent data source: m3, 2006-03-15 14:40:05",
		"Bound of inconsistency: 00:20:00",
		"''normal'' relevant data sources and timestamps are in the temporary table: sys_temp_a",
		"m1",
		"idle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestFocusedRestrictsSources(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()
	rep, err := Run(sess, `SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Minimal {
		t.Errorf("should be minimal: %v", rep.Reasons)
	}
	total := len(rep.Normal) + len(rep.Exceptional)
	if total != 2 {
		t.Fatalf("relevant = %d sources, want 2", total)
	}
}

func TestNaiveReportsAll(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()
	rep, err := Run(sess, `SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'`,
		Config{Method: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Minimal {
		t.Error("naive must not claim minimality")
	}
	if total := len(rep.Normal) + len(rep.Exceptional); total != 11 {
		t.Fatalf("naive relevant = %d, want 11", total)
	}
}

func TestEmptyReport(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()
	rep, err := Run(sess, `SELECT mach_id FROM Activity WHERE value = 'down'`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty {
		t.Fatal("expected Empty report")
	}
	if !strings.Contains(rep.Render(), "No data source is relevant") {
		t.Errorf("render = %s", rep.Render())
	}
}

func TestSkipKnobs(t *testing.T) {
	db := sectionDB(t)
	sess := db.NewSession()
	defer sess.Close()
	rep, err := Run(sess, `SELECT mach_id FROM Activity WHERE value = 'idle'`,
		Config{SkipStats: true, SkipTempTables: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exceptional) != 0 {
		t.Error("SkipStats should disable outlier detection")
	}
	if len(rep.Normal) != 11 {
		t.Errorf("normal = %d, want all 11", len(rep.Normal))
	}
	if rep.NormalTable != "" || rep.ExceptionalTable != "" {
		t.Error("SkipTempTables should leave table names empty")
	}
	if len(sess.TempTables()) != 0 {
		t.Error("no temp tables should have been created")
	}
}

func TestSnapshotConsistencyUnderConcurrentLoad(t *testing.T) {
	// Requirement 1 end to end: while loaders update Activity and
	// Heartbeat, each report's user result and recency rows must come from
	// one snapshot — the recency of a source must be >= the newest event
	// we see from it, and the bound/min/max must be internally consistent.
	db := sectionDB(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		base := time.Date(2006, 3, 16, 0, 0, 0, 0, time.UTC)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Event + heartbeat advance must commit atomically (the Batch
			// API exists for exactly this): otherwise a snapshot between
			// the two statements legitimately sees the event with a stale
			// recency.
			ts := base.Add(time.Duration(i) * time.Second).Format(types.TimeLayout)
			b := db.BeginBatch()
			if _, err := b.Exec(`INSERT INTO Activity VALUES ('m1', 'idle', '` + ts + `')`); err != nil {
				t.Error(err)
				return
			}
			if _, err := b.Exec(`UPDATE Heartbeat SET recency = '` + ts + `' WHERE sid = 'm1'`); err != nil {
				t.Error(err)
				return
			}
			if err := b.Commit(); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()

	for iter := 0; iter < 30; iter++ {
		sess := db.NewSession()
		rep, err := Run(sess, `SELECT mach_id, event_time FROM Activity WHERE mach_id = 'm1'`, Config{})
		if err != nil {
			t.Fatal(err)
		}
		// Find m1's reported recency.
		var recency time.Time
		for _, sr := range append(rep.Normal, rep.Exceptional...) {
			if sr.Sid == "m1" {
				recency = sr.Recency
			}
		}
		if recency.IsZero() {
			t.Fatal("m1 missing from recency report")
		}
		// Every m1 event in the result must be <= recency OR belong to the
		// initial fixture (whose event_time predates the loader's base).
		for _, row := range rep.Result.Rows {
			et := row[1].Time()
			if et.After(recency) {
				t.Fatalf("snapshot inconsistency: event %v newer than reported recency %v", et, recency)
			}
		}
		sess.Close()
	}
	close(stop)
	wg.Wait()
}

func TestPreparedExecuteReuse(t *testing.T) {
	db := sectionDB(t)
	p, err := Prepare(db, `SELECT mach_id FROM Activity WHERE mach_id = 'm1'`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sess := db.NewSession()
		rep, err := p.Execute(sess)
		if err != nil {
			t.Fatal(err)
		}
		if total := len(rep.Normal) + len(rep.Exceptional); total != 1 {
			t.Fatalf("relevant = %d, want 1", total)
		}
		sess.Close()
	}
}

func TestFormatBound(t *testing.T) {
	cases := map[time.Duration]string{
		20 * time.Minute:               "00:20:00",
		0:                              "00:00:00",
		90*time.Minute + 5*time.Second: "01:30:05",
		25 * time.Hour:                 "25:00:00",
		-(10 * time.Minute):            "00:10:00",
	}
	for d, want := range cases {
		if got := formatBound(d); got != want {
			t.Errorf("formatBound(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestMethodString(t *testing.T) {
	if Focused.String() != "focused" || Naive.String() != "naive" {
		t.Error("method names wrong")
	}
}
