// Package report implements the paper's recencyReport facility (§4.3, §5.1):
// it runs a user query together with its system-generated recency query in
// one snapshot, splits exceptionally out-of-date sources from the normal
// ones by z-score, computes the least/most recent source and the "bound of
// inconsistency" (the recency range), and materializes the detail rows into
// session temp tables that remain queryable with ordinary SQL.
package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"trac/internal/core/recgen"
	"trac/internal/core/stats"
	"trac/internal/engine"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/types"
)

// Method selects how the relevant-source set is computed.
type Method int

// Methods.
const (
	// Focused generates a query-specific recency query (the paper's
	// contribution).
	Focused Method = iota
	// Naive reports every source in the Heartbeat table.
	Naive
)

// String names the method.
func (m Method) String() string {
	if m == Naive {
		return "naive"
	}
	return "focused"
}

// Detector selects the exceptional-source detection method.
type Detector int

// Detectors. The paper uses the classical z-score with the Chebyshev
// justification; MAD (modified z-score) is the robust alternative it
// alludes to ("obviously there are many methods that could be used"), and
// is preferable with few relevant sources, where a single dead source
// cannot push its classical z-score past 3.
const (
	DetectorZScore Detector = iota
	DetectorMAD
)

// Config tunes report generation.
type Config struct {
	Method     Method
	Heartbeat  recgen.Options
	Detector   Detector
	ZThreshold float64 // 0 means the detector's default threshold
	// SkipStats disables exceptional-source detection and the descriptive
	// statistics pass (ablation knob).
	SkipStats bool
	// SkipTempTables disables materializing sys_temp_* tables (ablation
	// knob; the in-memory slices are still populated).
	SkipTempTables bool
	// DisableCache forces Run to re-parse and re-generate the recency plan
	// even when a valid cached Prepared exists (ablation knob; also the
	// semantics of the benchmark's plain "focused" series).
	DisableCache bool
}

// SourceRecency is one (data source, recency timestamp) pair.
type SourceRecency struct {
	Sid     string
	Recency time.Time
}

// Timing breaks down where a report's time went, mirroring the paper's
// three measured components.
type Timing struct {
	// Generate covers user-query parsing and recency-query generation
	// (zero for the Naive method and for pre-prepared runs).
	Generate time.Duration
	// UserQuery is the user query's execution time.
	UserQuery time.Duration
	// RecencyQuery is the recency query's execution time.
	RecencyQuery time.Duration
	// Stats covers outlier detection, descriptive statistics and temp
	// table materialization.
	Stats time.Duration
}

// Report is the full outcome of a recency-reported query.
type Report struct {
	// Result is the user query's result set.
	Result *engine.Result
	// Method that produced RelevantSources.
	Method Method
	// RecencySQL is the executed recency query ("" when Empty).
	RecencySQL string
	// Minimal is the generator's minimality guarantee (always false for
	// Naive unless the query makes every source relevant — we simply
	// report false).
	Minimal bool
	// Reasons explains lost minimality.
	Reasons []string
	// Empty means the relevant set is provably empty.
	Empty bool
	// Normal holds the non-exceptional relevant sources, ascending by
	// recency.
	Normal []SourceRecency
	// Exceptional holds sources whose recency z-score breached the
	// threshold (typically hard-disconnected machines).
	Exceptional []SourceRecency
	// Least/Most are the least and most recent NORMAL sources; zero when
	// there are none.
	Least, Most SourceRecency
	// Bound is the paper's "bound of inconsistency": Most minus Least.
	Bound time.Duration
	// NormalTable/ExceptionalTable name the session temp tables ("" when
	// skipped).
	NormalTable, ExceptionalTable string
	// CachedPlan means the parsed user query and generated recency query
	// came from the engine's plan cache instead of being built fresh.
	CachedPlan bool
	// Timing is the cost breakdown.
	Timing Timing
}

// Prepared is a parsed user query with its generated recency query, ready
// to execute repeatedly. It backs the paper's "hardcoded recency query"
// measurement: preparing once and executing many times isolates the
// generation cost.
type Prepared struct {
	UserStmt  *sqlparser.SelectStmt
	Generated *recgen.Generated
	Config    Config
	genTime   time.Duration
}

// GenTime reports how long preparation took (the paper's generation-cost
// component), for callers assembling report timings themselves.
func (p *Prepared) GenTime() time.Duration { return p.genTime }

// Prepare parses the user query and generates its recency query.
func Prepare(db *engine.DB, userSQL string, cfg Config) (*Prepared, error) {
	start := time.Now()
	sel, err := sqlparser.ParseSelect(userSQL)
	if err != nil {
		return nil, err
	}
	p := &Prepared{UserStmt: sel, Config: cfg}
	switch cfg.Method {
	case Naive:
		p.Generated = &recgen.Generated{
			Stmt:    recgen.NaiveStmt(cfg.Heartbeat),
			Minimal: false,
			Reasons: []string{"naive method reports every source"},
		}
		p.Generated.SQL = p.Generated.Stmt.SQL()
	default:
		g, err := recgen.Generate(sel, db.Catalog(), cfg.Heartbeat)
		if err != nil {
			return nil, err
		}
		p.Generated = g
	}
	p.genTime = time.Since(start)
	return p, nil
}

// cacheKey fingerprints everything that shapes a Prepared: the normalized
// query text plus every Config field that alters generation. Two configs
// differing only in execution-time knobs (SkipStats, SkipTempTables,
// detection thresholds) still share the generated plan, but we include them
// anyway: Prepared embeds the whole Config, so a cache hit replays it.
func cacheKey(userSQL string, cfg Config) string {
	return fmt.Sprintf("report:%d|%+v|%d|%g|%t|%t|%s",
		cfg.Method, cfg.Heartbeat, cfg.Detector, cfg.ZThreshold,
		cfg.SkipStats, cfg.SkipTempTables, engine.NormalizeSQL(userSQL))
}

// PrepareCached returns a Prepared for (userSQL, cfg) from the engine's plan
// cache when one exists under the current catalog version, otherwise
// prepares fresh and caches the result. The second return reports a hit.
// Prepared is immutable after construction, so sharing one across calls (and
// goroutines) is safe.
func PrepareCached(db *engine.DB, userSQL string, cfg Config) (*Prepared, bool, error) {
	key := cacheKey(userSQL, cfg)
	version := db.CatalogVersion()
	if v, ok := db.PlanCache().Get(key, version); ok {
		return v.(*Prepared), true, nil
	}
	p, err := Prepare(db, userSQL, cfg)
	if err != nil {
		return nil, false, err
	}
	db.PlanCache().Put(key, version, p)
	return p, false, nil
}

// Run prepares and executes a recency-reported query in one call (the
// equivalent of the paper's `SELECT * FROM recencyReport($$...$$)`).
// Unless cfg.DisableCache is set, preparation goes through the engine's
// plan cache, so steady-state repeats skip parsing, classification and
// recency-query generation entirely.
func Run(sess *engine.Session, userSQL string, cfg Config) (*Report, error) {
	var (
		p   *Prepared
		hit bool
		err error
	)
	start := time.Now()
	if cfg.DisableCache {
		p, err = Prepare(sess.DB(), userSQL, cfg)
	} else {
		p, hit, err = PrepareCached(sess.DB(), userSQL, cfg)
	}
	if err != nil {
		return nil, err
	}
	genTime := p.genTime
	if hit {
		// On a hit the report's generation cost is just the lookup.
		genTime = time.Since(start)
	}
	rep, err := p.Execute(sess)
	if err != nil {
		return nil, err
	}
	rep.Timing.Generate = genTime
	rep.CachedPlan = hit
	return rep, nil
}

// Execute runs the prepared user and recency queries under one snapshot and
// assembles the report.
func (p *Prepared) Execute(sess *engine.Session) (*Report, error) {
	db := sess.DB()
	cfg := p.Config
	rep := &Report{
		Method:  cfg.Method,
		Minimal: p.Generated.Minimal,
		Reasons: p.Generated.Reasons,
		Empty:   p.Generated.Empty,
	}
	if p.Generated.Stmt != nil {
		rep.RecencySQL = p.Generated.SQL
	}

	// One snapshot for both queries: the paper's first guiding requirement.
	snap := db.Snapshot()

	t0 := time.Now()
	res, err := db.QueryStmtAt(p.UserStmt, snap)
	if err != nil {
		return nil, err
	}
	rep.Result = res
	rep.Timing.UserQuery = time.Since(t0)

	var pairs []SourceRecency
	if p.Generated.Stmt != nil {
		t1 := time.Now()
		rres, err := db.QueryStmtAt(p.Generated.Stmt, snap)
		if err != nil {
			return nil, fmt.Errorf("report: recency query failed: %w", err)
		}
		rep.Timing.RecencyQuery = time.Since(t1)
		pairs = make([]SourceRecency, 0, len(rres.Rows))
		for _, row := range rres.Rows {
			if len(row) < 2 || row[0].IsNull() || row[1].IsNull() {
				continue
			}
			pairs = append(pairs, SourceRecency{Sid: row[0].String(), Recency: row[1].Time()})
		}
	}

	t2 := time.Now()
	Summarize(rep, pairs, cfg)
	if !cfg.SkipTempTables {
		if err := Materialize(sess, rep); err != nil {
			return nil, err
		}
	}
	rep.Timing.Stats = time.Since(t2)
	return rep, nil
}

// Summarize classifies the (sid, recency) pairs into normal and exceptional
// sources and fills the report's least/most/bound summary. Exported so a
// sharded executor can gather per-shard pair sets and assemble the same
// report the single-engine path produces.
func Summarize(rep *Report, pairs []SourceRecency, cfg Config) {
	sort.Slice(pairs, func(i, j int) bool {
		if !pairs[i].Recency.Equal(pairs[j].Recency) {
			return pairs[i].Recency.Before(pairs[j].Recency)
		}
		return pairs[i].Sid < pairs[j].Sid
	})
	if cfg.SkipStats {
		rep.Normal = pairs
	} else {
		xs := make([]float64, len(pairs))
		for i, sr := range pairs {
			xs[i] = float64(sr.Recency.UnixNano()) / float64(time.Second)
		}
		var normalIdx, excIdx []int
		threshold := cfg.ZThreshold
		if cfg.Detector == DetectorMAD {
			normalIdx, excIdx = stats.OutliersMAD(xs, threshold)
		} else {
			if threshold == 0 {
				threshold = stats.DefaultZThreshold
			}
			normalIdx, excIdx = stats.Outliers(xs, threshold)
		}
		for _, i := range normalIdx {
			rep.Normal = append(rep.Normal, pairs[i])
		}
		for _, i := range excIdx {
			rep.Exceptional = append(rep.Exceptional, pairs[i])
		}
	}
	if len(rep.Normal) > 0 {
		rep.Least = rep.Normal[0]
		rep.Most = rep.Normal[len(rep.Normal)-1]
		rep.Bound = rep.Most.Recency.Sub(rep.Least.Recency)
	}
}

// Materialize creates the session temp tables (sys_temp_e, sys_temp_a) for a
// summarized report. Exported for the sharded report path, which materializes
// on its designated session shard.
func Materialize(sess *engine.Session, rep *Report) error {
	cols := []storage.Column{
		{Name: "sid", Kind: types.KindString},
		{Name: "recency", Kind: types.KindTime},
	}
	toRows := func(srs []SourceRecency) [][]types.Value {
		rows := make([][]types.Value, len(srs))
		for i, sr := range srs {
			rows[i] = []types.Value{types.NewString(sr.Sid), types.NewTime(sr.Recency)}
		}
		return rows
	}
	var err error
	rep.ExceptionalTable, err = sess.CreateTempTable("sys_temp_e", cols, toRows(rep.Exceptional))
	if err != nil {
		return err
	}
	rep.NormalTable, err = sess.CreateTempTable("sys_temp_a", cols, toRows(rep.Normal))
	return err
}

// Render produces the paper's NOTICE-style report text followed by the
// formatted user result.
func (r *Report) Render() string {
	var sb strings.Builder
	if r.Empty {
		sb.WriteString("NOTICE: No data source is relevant to this query (its predicates are unsatisfiable)\n")
	} else {
		if r.ExceptionalTable != "" {
			fmt.Fprintf(&sb, "NOTICE: Exceptional relevant data sources and timestamps are in the temporary table: %s\n",
				r.ExceptionalTable)
		} else if len(r.Exceptional) > 0 {
			fmt.Fprintf(&sb, "NOTICE: %d exceptional relevant data source(s) detected\n", len(r.Exceptional))
		}
		if len(r.Normal) > 0 {
			fmt.Fprintf(&sb, "NOTICE: The least recent data source: %s, %s\n",
				r.Least.Sid, r.Least.Recency.UTC().Format(types.TimeLayout))
			fmt.Fprintf(&sb, "NOTICE: The most recent data source: %s, %s\n",
				r.Most.Sid, r.Most.Recency.UTC().Format(types.TimeLayout))
			fmt.Fprintf(&sb, "NOTICE: Bound of inconsistency: %s\n", formatBound(r.Bound))
		} else {
			sb.WriteString("NOTICE: No normal relevant data sources\n")
		}
		if r.NormalTable != "" {
			fmt.Fprintf(&sb, "NOTICE: All ''normal'' relevant data sources and timestamps are in the temporary table: %s\n",
				r.NormalTable)
		}
		if !r.Minimal && r.Method == Focused {
			sb.WriteString("NOTICE: The relevant source set is an upper bound (not guaranteed minimal)\n")
		}
	}
	sb.WriteString("\n")
	sb.WriteString(r.Result.Format())
	return sb.String()
}

// formatBound renders a duration as HH:MM:SS, as in the paper's transcript
// ("Bound of inconsistency: 00:20:00").
func formatBound(d time.Duration) string {
	if d < 0 {
		d = -d
	}
	d = d.Round(time.Second)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	s := (d % time.Minute) / time.Second
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}
