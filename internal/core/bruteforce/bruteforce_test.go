package bruteforce

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"trac/internal/core/recgen"
	"trac/internal/engine"
	"trac/internal/sqlparser"
	"trac/internal/types"
)

// fixtureDB builds a small finite-domain schema in the style of the paper's
// evaluation ("a test schema specially designed so that a finite domain with
// a reasonable cardinality is associated with each column").
//
//	Activity(mach_id [src, {m1..m4}], value {idle,busy}, slot [0..3])
//	Routing (mach_id [src, {m1..m4}], neighbor {m1..m4})
//	Heartbeat(sid, recency)
func fixtureDB(t testing.TB) *engine.DB {
	t.Helper()
	db := engine.New()
	for _, sql := range []string{
		`CREATE TABLE Activity (mach_id TEXT, value TEXT, slot BIGINT)`,
		`CREATE TABLE Routing (mach_id TEXT, neighbor TEXT)`,
		`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`,
		`INSERT INTO Heartbeat VALUES
			('m1', '2006-03-15 14:20:05'), ('m2', '2006-03-15 14:21:05'),
			('m3', '2006-03-15 14:22:05'), ('m4', '2006-03-15 14:23:05')`,
	} {
		db.MustExec(sql)
	}
	machines := types.FiniteStringDomain("m1", "m2", "m3", "m4")
	slotDom, _ := types.IntRangeDomain(0, 3)

	act, _ := db.Catalog().Get("Activity")
	act.Schema.SetSourceColumn("mach_id")
	act.Schema.Columns[0].Domain = machines
	act.Schema.Columns[1].Domain = types.FiniteStringDomain("idle", "busy")
	act.Schema.Columns[2].Domain = slotDom

	rout, _ := db.Catalog().Get("Routing")
	rout.Schema.SetSourceColumn("mach_id")
	rout.Schema.Columns[0].Domain = machines
	rout.Schema.Columns[1].Domain = machines
	return db
}

func seedData(t testing.TB, db *engine.DB) {
	t.Helper()
	db.MustExec(`INSERT INTO Activity VALUES
		('m1', 'idle', 0), ('m2', 'busy', 1), ('m3', 'idle', 2)`)
	db.MustExec(`INSERT INTO Routing VALUES ('m1', 'm3'), ('m2', 'm3')`)
}

func brute(t testing.TB, db *engine.DB, sql string) []string {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Relevant(sel, db.Catalog(), db.Snapshot(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func focused(t testing.TB, db *engine.DB, sql string) ([]string, bool) {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	g, err := recgen.Generate(sel, db.Catalog(), recgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Empty {
		return nil, g.Minimal
	}
	res, err := db.QueryStmtAt(g.Stmt, db.Snapshot())
	if err != nil {
		t.Fatalf("running generated %q: %v", g.SQL, err)
	}
	var sids []string
	for _, row := range res.Rows {
		sids = append(sids, row[0].Str())
	}
	sort.Strings(sids)
	return sids, g.Minimal
}

func TestSingleRelationExact(t *testing.T) {
	db := fixtureDB(t)
	seedData(t, db)
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT mach_id FROM Activity WHERE mach_id IN ('m1', 'm2') AND value = 'idle'`, "m1,m2"},
		{`SELECT mach_id FROM Activity WHERE value = 'idle'`, "m1,m2,m3,m4"},
		{`SELECT mach_id FROM Activity WHERE mach_id = 'm1' AND value = 'down'`, ""},
		{`SELECT mach_id FROM Activity WHERE slot = 9`, ""},
		{`SELECT mach_id FROM Activity WHERE mach_id = 'm3'`, "m3"},
		{`SELECT mach_id FROM Activity`, "m1,m2,m3,m4"},
	}
	for _, c := range cases {
		got := strings.Join(brute(t, db, c.sql), ",")
		if got != c.want {
			t.Errorf("Relevant(%q) = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestMultiRelationUsesActualTuples(t *testing.T) {
	db := fixtureDB(t)
	seedData(t, db)
	// The paper's Q2: relevant via Routing = {m1} (potential tuples), via
	// Activity = {m3} (actual Routing rows with mach_id=m1 have neighbor m3).
	sql := `SELECT A.mach_id FROM Routing R, Activity A
		WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`
	if got := strings.Join(brute(t, db, sql), ","); got != "m1,m3" {
		t.Errorf("Relevant = %q, want m1,m3", got)
	}
}

func TestPaperAllBusyScenario(t *testing.T) {
	// §4.1.2's modified instance: all machines busy -> S(Q2,R) = ∅ but
	// S(Q2,A) = {m3}: an update from m3 (going idle) changes the result.
	db := fixtureDB(t)
	db.MustExec(`INSERT INTO Activity VALUES ('m1', 'busy', 0), ('m2', 'busy', 1), ('m3', 'busy', 2)`)
	db.MustExec(`INSERT INTO Routing VALUES ('m1', 'm3'), ('m2', 'm3')`)
	sql := `SELECT A.mach_id FROM Routing R, Activity A
		WHERE R.mach_id = 'm1' AND A.value = 'idle' AND R.neighbor = A.mach_id`
	if got := strings.Join(brute(t, db, sql), ","); got != "m3" {
		t.Errorf("Relevant = %q, want m3", got)
	}
}

func TestEmptyOtherRelation(t *testing.T) {
	db := fixtureDB(t)
	db.MustExec(`INSERT INTO Activity VALUES ('m1', 'idle', 0)`)
	// Routing empty: nothing relevant via Activity; via Routing the
	// Activity row exists.
	sql := `SELECT A.mach_id FROM Routing R, Activity A
		WHERE A.value = 'idle' AND R.neighbor = A.mach_id`
	if got := strings.Join(brute(t, db, sql), ","); got != "m1,m2,m3,m4" {
		// Via Routing: any source could insert a routing row with
		// neighbor=m1 joining the idle m1 activity row.
		t.Errorf("Relevant = %q", got)
	}
}

func TestInfiniteDomainRejected(t *testing.T) {
	db := fixtureDB(t)
	act, _ := db.Catalog().Get("Activity")
	act.Schema.Columns[1].Domain = types.UnboundedDomain(types.KindString)
	sel, _ := sqlparser.ParseSelect(`SELECT mach_id FROM Activity WHERE value = 'idle'`)
	if _, err := Relevant(sel, db.Catalog(), db.Snapshot(), Options{}); err == nil {
		t.Error("expected error for infinite domain")
	}
}

// randomQuery generates a random single- or two-relation SPJ query over the
// fixture schema.
func randomQuery(rng *rand.Rand) string {
	machines := []string{"m1", "m2", "m3", "m4"}
	values := []string{"idle", "busy", "down"} // 'down' is outside the domain
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }

	var preds []string
	addActivityPred := func(alias string) {
		switch rng.Intn(5) {
		case 0:
			preds = append(preds, fmt.Sprintf("%smach_id = '%s'", alias, pick(machines)))
		case 1:
			preds = append(preds, fmt.Sprintf("%smach_id IN ('%s', '%s')", alias, pick(machines), pick(machines)))
		case 2:
			preds = append(preds, fmt.Sprintf("%svalue = '%s'", alias, pick(values)))
		case 3:
			preds = append(preds, fmt.Sprintf("%sslot >= %d", alias, rng.Intn(5)))
		case 4:
			preds = append(preds, fmt.Sprintf("%sslot BETWEEN %d AND %d", alias, rng.Intn(4), rng.Intn(6)))
		}
	}

	if rng.Intn(2) == 0 {
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			addActivityPred("")
		}
		where := strings.Join(preds, pickJoin(rng))
		return "SELECT mach_id FROM Activity WHERE " + where
	}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		addActivityPred("A.")
	}
	preds = append(preds, fmt.Sprintf("R.mach_id = '%s'", pick(machines)))
	preds = append(preds, "R.neighbor = A.mach_id")
	where := strings.Join(preds, " AND ")
	return "SELECT A.mach_id FROM Routing R, Activity A WHERE " + where
}

func pickJoin(rng *rand.Rand) string {
	if rng.Intn(4) == 0 {
		return " OR "
	}
	return " AND "
}

// TestCompletenessProperty is the paper's completeness requirement as a
// property test: for random queries over random instances, the Focused
// recency query never misses a source found by exhaustive enumeration,
// and when the generator claims minimality the two sets are equal.
func TestCompletenessAndMinimalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20060912)) // VLDB '06 opening day
	for trial := 0; trial < 120; trial++ {
		db := fixtureDB(t)
		// Random instance.
		machines := []string{"m1", "m2", "m3", "m4"}
		values := []string{"idle", "busy"}
		nAct := rng.Intn(5)
		for i := 0; i < nAct; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO Activity VALUES ('%s', '%s', %d)`,
				machines[rng.Intn(4)], values[rng.Intn(2)], rng.Intn(4)))
		}
		nRout := rng.Intn(4)
		for i := 0; i < nRout; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO Routing VALUES ('%s', '%s')`,
				machines[rng.Intn(4)], machines[rng.Intn(4)]))
		}
		sql := randomQuery(rng)

		exact := brute(t, db, sql)
		got, minimal := focused(t, db, sql)

		gotSet := make(map[string]bool, len(got))
		for _, s := range got {
			gotSet[s] = true
		}
		for _, s := range exact {
			if !gotSet[s] {
				t.Fatalf("trial %d: completeness violated for %q:\nexact   %v\nfocused %v",
					trial, sql, exact, got)
			}
		}
		if minimal && strings.Join(exact, ",") != strings.Join(got, ",") {
			t.Fatalf("trial %d: minimality claim violated for %q:\nexact   %v\nfocused %v",
				trial, sql, exact, got)
		}
	}
}

// TestTheorem1Property checks the user-level guarantee directly: inserting
// any single potential tuple tagged with a source OUTSIDE the computed
// relevant set never changes the query result.
func TestTheorem1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	machines := []string{"m1", "m2", "m3", "m4"}
	values := []string{"idle", "busy"}
	for trial := 0; trial < 40; trial++ {
		db := fixtureDB(t)
		for i := 0; i < rng.Intn(4); i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO Activity VALUES ('%s', '%s', %d)`,
				machines[rng.Intn(4)], values[rng.Intn(2)], rng.Intn(4)))
		}
		for i := 0; i < rng.Intn(3); i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO Routing VALUES ('%s', '%s')`,
				machines[rng.Intn(4)], machines[rng.Intn(4)]))
		}
		sql := randomQuery(rng)
		exact := brute(t, db, sql)
		relevant := make(map[string]bool)
		for _, s := range exact {
			relevant[s] = true
		}

		before, err := db.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		beforeKey := resultKey(before.Rows)

		// Try every single-tuple insert from every irrelevant source into
		// every monitored relation mentioned by the query.
		for _, src := range machines {
			if relevant[src] {
				continue
			}
			inserts := []string{
				fmt.Sprintf(`INSERT INTO Activity VALUES ('%s', '%s', %d)`, src, values[rng.Intn(2)], rng.Intn(4)),
				fmt.Sprintf(`INSERT INTO Routing VALUES ('%s', '%s')`, src, machines[rng.Intn(4)]),
			}
			for _, ins := range inserts {
				if !strings.Contains(sql, "Routing") && strings.Contains(ins, "Routing") {
					continue
				}
				snapBefore := db.Snapshot()
				db.MustExec(ins)
				after, err := db.Query(sql)
				if err != nil {
					t.Fatal(err)
				}
				if resultKey(after.Rows) != beforeKey {
					t.Fatalf("trial %d: Theorem 1 violated: %q changed %q\nrelevant=%v before=%v after=%v",
						trial, ins, sql, exact, before.Rows, after.Rows)
				}
				// Roll back by deleting everything newer than the snapshot:
				// easiest is rebuilding, but deleting the inserted row works.
				_ = snapBefore
				table := "Activity"
				if strings.Contains(ins, "Routing") {
					table = "Routing"
				}
				db.MustExec(fmt.Sprintf(`DELETE FROM %s WHERE mach_id = '%s'`, table, src))
			}
		}
	}
}

func resultKey(rows [][]types.Value) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		keys[i] = strings.Join(parts, "|")
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}
