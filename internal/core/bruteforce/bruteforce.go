// Package bruteforce computes the exact set of relevant data sources S(Q)
// by direct application of the paper's Definitions 1 and 2: a source s is
// relevant via R_i when some potential tuple over R_i's column domains,
// tagged with s, together with actual tuples of the other relations,
// satisfies the query predicates.
//
// This is exponential in the number of columns and is used exactly the way
// the paper used it: over specially designed test schemas with small finite
// domains, to measure the false positive rate of the generated recency
// queries. It is not part of the production reporting path.
package bruteforce

import (
	"fmt"
	"sort"

	"trac/internal/core/classify"
	"trac/internal/exec"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/txn"
	"trac/internal/types"
)

// enumLimit caps the number of potential tuples per relation so a
// mis-configured schema fails fast instead of running forever.
const enumLimit = 1 << 22

// Options mirrors recgen.Options for locating the Heartbeat table.
type Options struct {
	HeartbeatTable string
	SidColumn      string
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTable == "" {
		o.HeartbeatTable = "Heartbeat"
	}
	if o.SidColumn == "" {
		o.SidColumn = "sid"
	}
	return o
}

// Relevant computes S(Q) exactly. Every regular column of every monitored
// relation in the query must have a finite domain. The source domain D_s is
// the set of sids visible in the Heartbeat table under the snapshot.
func Relevant(sel *sqlparser.SelectStmt, cat *storage.Catalog, snap txn.Snapshot, opts Options) ([]string, error) {
	opts = opts.withDefaults()
	if len(sel.Union) > 0 {
		return nil, fmt.Errorf("bruteforce: UNION queries unsupported")
	}
	hb, err := cat.Get(opts.HeartbeatTable)
	if err != nil {
		return nil, err
	}
	sidIdx := hb.Schema.ColumnIndex(opts.SidColumn)
	if sidIdx < 0 {
		return nil, fmt.Errorf("bruteforce: heartbeat lacks column %q", opts.SidColumn)
	}
	var sources []types.Value
	for _, r := range hb.Rows() {
		if snap.Visible(r) {
			sources = append(sources, r.Values[sidIdx])
		}
	}

	// Bind relations.
	bindings := make([]exec.Binding, len(sel.From))
	tables := make([]*storage.Table, len(sel.From))
	for i, ref := range sel.From {
		tbl, err := cat.Get(ref.Name)
		if err != nil {
			return nil, err
		}
		tables[i] = tbl
		bindings[i] = exec.Binding{Name: ref.Binding(), Table: tbl}
	}
	layout := exec.NewLayout(bindings)

	// §3.4: apply predicate-form CHECK constraints so candidate potential
	// tuples are restricted to legal instances, mirroring the generator.
	rels := make([]classify.Relation, len(sel.From))
	for i, ref := range sel.From {
		rels[i] = classify.Relation{Binding: ref.Binding(), Table: tables[i]}
	}
	where := classify.WithChecks(sel.Where, rels)

	var pred exec.Evaluator
	if where != nil {
		pred, err = exec.Compile(where, layout)
		if err != nil {
			return nil, err
		}
	}

	relevant := make(map[string]bool)
	for i := range tables {
		if tables[i].Schema.SourceColumn < 0 {
			continue // unmonitored: contributes no sources
		}
		if err := relevantVia(layout, tables, i, sources, pred, snap, relevant); err != nil {
			return nil, err
		}
	}

	out := make([]string, 0, len(relevant))
	for s := range relevant {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// relevantVia adds to `relevant` every source that is relevant via relation
// index i (Definition 2).
func relevantVia(layout *exec.Layout, tables []*storage.Table, i int,
	sources []types.Value, pred exec.Evaluator, snap txn.Snapshot, relevant map[string]bool) error {

	target := tables[i]
	schema := target.Schema
	width := layout.Width()
	offset := layout.Bindings[i].Offset

	// Enumerate the regular columns' domains.
	regularDomains := make([][]types.Value, 0, schema.NumColumns())
	regularCols := make([]int, 0, schema.NumColumns())
	count := 1
	for ci, col := range schema.Columns {
		if ci == schema.SourceColumn {
			continue
		}
		vals, ok := col.Domain.Enumerate()
		if !ok {
			return fmt.Errorf("bruteforce: column %s.%s has an infinite domain", target.Name, col.Name)
		}
		regularDomains = append(regularDomains, vals)
		regularCols = append(regularCols, ci)
		count *= len(vals)
		if count > enumLimit {
			return fmt.Errorf("bruteforce: potential-tuple space of %s exceeds %d", target.Name, enumLimit)
		}
	}

	// Materialize the cross product of the OTHER relations' actual visible
	// rows as partially filled joined tuples.
	partials := [][]types.Value{make([]types.Value, width)}
	for j, b := range layout.Bindings {
		if j == i {
			continue
		}
		var rows []*storage.Row
		for _, r := range b.Table.Rows() {
			if snap.Visible(r) {
				rows = append(rows, r)
			}
		}
		next := make([][]types.Value, 0, len(partials)*len(rows))
		for _, p := range partials {
			for _, r := range rows {
				t := make([]types.Value, width)
				copy(t, p)
				copy(t[b.Offset:b.Offset+len(r.Values)], r.Values)
				next = append(next, t)
			}
		}
		partials = next
		if len(partials) == 0 {
			return nil // an empty other relation: nothing relevant via R_i
		}
		if len(partials) > enumLimit {
			return fmt.Errorf("bruteforce: join space exceeds %d", enumLimit)
		}
	}

	// For each source, search for a witnessing potential tuple.
	counters := make([]int, len(regularDomains))
	for _, src := range sources {
		key := src.String()
		if relevant[key] {
			continue
		}
		for i := range counters {
			counters[i] = 0
		}
		found := false
	enumeration:
		for {
			// Fill the candidate tuple region.
			for _, p := range partials {
				p[offset+schema.SourceColumn] = src
				for k, ci := range regularCols {
					p[offset+ci] = regularDomains[k][counters[k]]
				}
				ok, err := exec.EvalPredicate(pred, p)
				if err != nil {
					return err
				}
				if ok {
					found = true
					break enumeration
				}
			}
			// Advance the odometer.
			k := 0
			for ; k < len(counters); k++ {
				counters[k]++
				if counters[k] < len(regularDomains[k]) {
					break
				}
				counters[k] = 0
			}
			if k == len(counters) {
				break
			}
		}
		if found {
			relevant[key] = true
		}
	}
	return nil
}
