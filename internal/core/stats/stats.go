// Package stats implements the descriptive statistics the TRAC reporter
// attaches to query results (§4.3 of the paper): minimum/maximum recency,
// the range ("bound of inconsistency"), and z-score based detection of
// exceptionally out-of-date data sources, justified by the Chebyshev
// theorem (≥ 8/9 of any data set lies within 3 standard deviations).
package stats

import (
	"math"
	"sort"
)

// DefaultZThreshold is the |z| cutoff for flagging an exceptional source,
// the value the paper adopts.
const DefaultZThreshold = 3.0

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (the paper's σ with
// divisor N).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// ZScores returns (x-μ)/σ for each x. When σ is zero every z-score is zero.
func ZScores(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	mu := Mean(xs)
	sigma := StdDev(xs)
	if sigma == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - mu) / sigma
	}
	return out
}

// Range returns max-min (0 for empty input).
func Range(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return max - min
}

// Outliers partitions indexes into normal and exceptional by |z| ≥
// threshold. It is the paper's exceptional-data-source detector: recency
// timestamps far below the mean indicate sources suffering a hard
// disconnect or failure, which would otherwise distort the descriptive
// statistics reported for the healthy majority.
func Outliers(xs []float64, threshold float64) (normal, exceptional []int) {
	zs := ZScores(xs)
	for i, z := range zs {
		if math.Abs(z) >= threshold {
			exceptional = append(exceptional, i)
		} else {
			normal = append(normal, i)
		}
	}
	return normal, exceptional
}

// ChebyshevBound returns the minimum fraction of any data set guaranteed to
// lie within k standard deviations of the mean (1 - 1/k²), the bound the
// paper cites to justify the z-score rule.
func ChebyshevBound(k float64) float64 {
	if k <= 1 {
		return 0
	}
	return 1 - 1/(k*k)
}

// Median returns the middle value (average of the two middle values for
// even-sized input); 0 for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// MAD returns the median absolute deviation from the median.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return Median(devs)
}

// DefaultMADThreshold is the conventional modified-z-score cutoff.
const DefaultMADThreshold = 3.5

// madConsistency scales MAD to estimate σ under normality (Iglewicz &
// Hoaglin's 0.6745 factor).
const madConsistency = 0.6745

// OutliersMAD partitions indexes by the modified z-score
// 0.6745·(x−median)/MAD ≥ threshold. The paper notes "there are many
// methods that could be used" for exceptional-source detection; MAD is the
// robust alternative this library offers. Unlike the classical z-score —
// whose maximum attainable value in a sample of N is (N−1)/√N, so a single
// dead source can never be flagged among fewer than ~12 — the MAD detector
// is not masked by the outlier's own contribution to the spread.
func OutliersMAD(xs []float64, threshold float64) (normal, exceptional []int) {
	if threshold == 0 {
		threshold = DefaultMADThreshold
	}
	med := Median(xs)
	mad := MAD(xs)
	for i, x := range xs {
		if mad == 0 {
			// Degenerate spread: anything not exactly at the median of a
			// constant-majority set is exceptional.
			if x != med {
				exceptional = append(exceptional, i)
			} else {
				normal = append(normal, i)
			}
			continue
		}
		z := madConsistency * math.Abs(x-med) / mad
		if z >= threshold {
			exceptional = append(exceptional, i)
		} else {
			normal = append(normal, i)
		}
	}
	return normal, exceptional
}
