package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !approx(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if !approx(Mean([]float64{-1, 1}), 0) {
		t.Error("Mean of symmetric set")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 {
		t.Error("StdDev(nil) != 0")
	}
	if !approx(StdDev([]float64{5, 5, 5}), 0) {
		t.Error("constant set stddev != 0")
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	if !approx(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestZScores(t *testing.T) {
	zs := ZScores([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(zs[0], -1.5) { // (2-5)/2
		t.Errorf("z[0] = %v, want -1.5", zs[0])
	}
	if !approx(zs[7], 2) { // (9-5)/2
		t.Errorf("z[7] = %v, want 2", zs[7])
	}
	// Constant data: all zeros, no division by zero.
	for _, z := range ZScores([]float64{3, 3, 3}) {
		if z != 0 {
			t.Error("constant data should have zero z-scores")
		}
	}
	if len(ZScores(nil)) != 0 {
		t.Error("ZScores(nil) should be empty")
	}
}

func TestRange(t *testing.T) {
	if Range(nil) != 0 {
		t.Error("Range(nil) != 0")
	}
	if !approx(Range([]float64{3, 9, 1, 4}), 8) {
		t.Error("Range wrong")
	}
}

func TestOutliers(t *testing.T) {
	// 99 values near 100, one at 0: the zero is the outlier.
	xs := make([]float64, 100)
	for i := 0; i < 99; i++ {
		xs[i] = 100 + float64(i%3)
	}
	xs[99] = 0
	normal, exceptional := Outliers(xs, DefaultZThreshold)
	if len(exceptional) != 1 || exceptional[0] != 99 {
		t.Errorf("exceptional = %v", exceptional)
	}
	if len(normal) != 99 {
		t.Errorf("normal = %d", len(normal))
	}
	// No outliers in tight data.
	n2, e2 := Outliers([]float64{1, 2, 3}, DefaultZThreshold)
	if len(e2) != 0 || len(n2) != 3 {
		t.Errorf("tight data: normal=%v exceptional=%v", n2, e2)
	}
}

func TestOutliersPartitionProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		normal, exceptional := Outliers(xs, DefaultZThreshold)
		if len(normal)+len(exceptional) != len(xs) {
			return false
		}
		// Chebyshev: less than 1/9 of values may be exceptional at k=3
		// (strictly: at most 1/k^2).
		if len(xs) > 0 && float64(len(exceptional)) > float64(len(xs))/9.0+1 {
			return false
		}
		seen := make(map[int]bool)
		for _, i := range append(append([]int{}, normal...), exceptional...) {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChebyshevBound(t *testing.T) {
	if !approx(ChebyshevBound(3), 8.0/9.0) {
		t.Errorf("ChebyshevBound(3) = %v", ChebyshevBound(3))
	}
	if ChebyshevBound(1) != 0 || ChebyshevBound(0.5) != 0 {
		t.Error("k<=1 should bound at 0")
	}
}

func TestMedianAndMAD(t *testing.T) {
	if Median(nil) != 0 || MAD(nil) != 0 {
		t.Error("empty input should yield 0")
	}
	if !approx(Median([]float64{3, 1, 2}), 2) {
		t.Errorf("Median odd = %v", Median([]float64{3, 1, 2}))
	}
	if !approx(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Errorf("Median even = %v", Median([]float64{4, 1, 2, 3}))
	}
	// MAD of {1,2,3,4,100}: median 3, deviations {2,1,0,1,97}, MAD 1.
	if !approx(MAD([]float64{1, 2, 3, 4, 100}), 1) {
		t.Errorf("MAD = %v", MAD([]float64{1, 2, 3, 4, 100}))
	}
	// Median must not mutate input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated its input")
	}
}

func TestOutliersMADDetectsSmallSampleOutlier(t *testing.T) {
	// Ten tight values and one dead source: classical z-score CANNOT flag
	// it (max |z| = 10/sqrt(11) < 3 is the paper's own 11-source edge), but
	// MAD does.
	xs := []float64{100, 101, 102, 100, 101, 102, 100, 101, 102, 101, 0}
	_, excZ := Outliers(xs, DefaultZThreshold)
	normal, excMAD := OutliersMAD(xs, 0)
	if len(excMAD) != 1 || excMAD[0] != 10 {
		t.Errorf("MAD exceptional = %v, want [10]", excMAD)
	}
	if len(normal) != 10 {
		t.Errorf("MAD normal = %d", len(normal))
	}
	// Demonstrate the masking contrast for a 10-sample variant.
	xs10 := xs[1:]
	_, excZ10 := Outliers(xs10, DefaultZThreshold)
	if len(excZ10) != 0 {
		t.Errorf("z-score in N=10 cannot flag anything at threshold 3, got %v", excZ10)
	}
	_ = excZ
}

func TestOutliersMADDegenerateSpread(t *testing.T) {
	// Majority constant: MAD = 0; the deviant is exceptional.
	normal, exc := OutliersMAD([]float64{5, 5, 5, 5, 9}, 0)
	if len(exc) != 1 || exc[0] != 4 || len(normal) != 4 {
		t.Errorf("normal=%v exceptional=%v", normal, exc)
	}
	// All constant: nothing exceptional.
	normal, exc = OutliersMAD([]float64{5, 5, 5}, 0)
	if len(exc) != 0 || len(normal) != 3 {
		t.Errorf("constant: normal=%v exceptional=%v", normal, exc)
	}
}
