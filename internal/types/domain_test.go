package types

import (
	"testing"
	"testing/quick"
)

func TestFiniteDomain(t *testing.T) {
	d, err := FiniteDomain(NewString("busy"), NewString("idle"), NewString("busy"))
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := d.Size(); !ok || n != 2 {
		t.Errorf("Size = %d,%v want 2,true", n, ok)
	}
	if !d.Contains(NewString("idle")) || d.Contains(NewString("down")) {
		t.Error("Contains wrong")
	}
	if d.Contains(Null) {
		t.Error("NULL must never be a domain member")
	}
	vals, ok := d.Enumerate()
	if !ok || len(vals) != 2 || vals[0].Str() != "busy" || vals[1].Str() != "idle" {
		t.Errorf("Enumerate = %v,%v", vals, ok)
	}
	if _, err := FiniteDomain(); err == nil {
		t.Error("empty finite domain should error")
	}
	if _, err := FiniteDomain(NewInt(1), NewString("x")); err == nil {
		t.Error("mixed-kind finite domain should error")
	}
}

func TestFiniteStringDomain(t *testing.T) {
	d := FiniteStringDomain("m1", "m2", "m3")
	if n, _ := d.Size(); n != 3 {
		t.Errorf("Size = %d", n)
	}
	if d.String() != "{m1, m2, m3}" {
		t.Errorf("String = %q", d.String())
	}
}

func TestIntRangeDomain(t *testing.T) {
	d, err := IntRangeDomain(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := d.Size(); !ok || n != 5 {
		t.Errorf("Size = %d,%v", n, ok)
	}
	if !d.Contains(NewInt(3)) || !d.Contains(NewInt(7)) || d.Contains(NewInt(8)) || d.Contains(NewInt(2)) {
		t.Error("Contains bounds wrong")
	}
	if d.Contains(NewFloat(4)) {
		t.Error("int range should not contain floats")
	}
	vals, ok := d.Enumerate()
	if !ok || len(vals) != 5 || vals[0].Int() != 3 || vals[4].Int() != 7 {
		t.Errorf("Enumerate = %v", vals)
	}
	if _, err := IntRangeDomain(5, 4); err == nil {
		t.Error("inverted range should error")
	}
	if d.String() != "[3..7]" {
		t.Errorf("String = %q", d.String())
	}
}

func TestUnboundedDomain(t *testing.T) {
	d := UnboundedDomain(KindString)
	if d.IsFinite() {
		t.Error("unbounded domain must not be finite")
	}
	if _, ok := d.Size(); ok {
		t.Error("unbounded Size must report !ok")
	}
	if _, ok := d.Enumerate(); ok {
		t.Error("unbounded Enumerate must report !ok")
	}
	if !d.Contains(NewString("anything")) {
		t.Error("unbounded string domain should contain any string")
	}
	if d.Contains(NewInt(1)) {
		t.Error("unbounded string domain should reject ints")
	}
	num := UnboundedDomain(KindFloat)
	if !num.Contains(NewInt(2)) {
		t.Error("numeric unbounded domain should accept ints")
	}
}

func TestDomainEnumerateMembershipProperty(t *testing.T) {
	// Every enumerated value is Contained, and size matches enumeration length.
	f := func(a, b int16) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo > 2000 {
			hi = lo + 2000
		}
		d, err := IntRangeDomain(lo, hi)
		if err != nil {
			return false
		}
		vals, ok := d.Enumerate()
		if !ok {
			return false
		}
		n, _ := d.Size()
		if int64(len(vals)) != n {
			return false
		}
		for _, v := range vals {
			if !d.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
