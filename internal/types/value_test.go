package types

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	now := time.Date(2006, 3, 15, 14, 20, 5, 0, time.UTC)
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "NULL"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
		{NewInt(-42), KindInt, "-42"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("idle"), KindString, "idle"},
		{NewTime(now), KindTime, "2006-03-15 14:20:05"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
	if !NewBool(true).Bool() {
		t.Error("Bool payload lost")
	}
	if NewInt(7).Int() != 7 {
		t.Error("Int payload lost")
	}
	if NewFloat(1.5).Float() != 1.5 {
		t.Error("Float payload lost")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str payload lost")
	}
	if !NewTime(now).Time().Equal(now) {
		t.Error("Time payload lost")
	}
	if NewTimeNanos(now.UnixNano()).TimeNanos() != now.UnixNano() {
		t.Error("TimeNanos payload lost")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Int() on string value")
		}
	}()
	_ = NewString("x").Int()
}

func TestSQLRendering(t *testing.T) {
	now := time.Date(2006, 3, 15, 14, 20, 5, 0, time.UTC)
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NewInt(10), "10"},
		{NewFloat(2.5), "2.5"},
		{NewFloat(3), "3.0"},
		{NewString("it's"), "'it''s'"},
		{NewTime(now), "TIMESTAMP '2006-03-15 14:20:05'"},
	}
	for _, c := range cases {
		if got := c.v.SQL(); got != c.want {
			t.Errorf("SQL(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	if c, err := Compare(a, b); err != nil || c != -1 {
		t.Errorf("Compare(1,2) = %d,%v", c, err)
	}
	if c, err := Compare(b, a); err != nil || c != 1 {
		t.Errorf("Compare(2,1) = %d,%v", c, err)
	}
	if c, err := Compare(a, a); err != nil || c != 0 {
		t.Errorf("Compare(1,1) = %d,%v", c, err)
	}
	// Cross numeric comparison.
	if c, err := Compare(NewInt(2), NewFloat(1.5)); err != nil || c != 1 {
		t.Errorf("Compare(2, 1.5) = %d,%v", c, err)
	}
	if c, err := Compare(NewFloat(1.5), NewInt(2)); err != nil || c != -1 {
		t.Errorf("Compare(1.5, 2) = %d,%v", c, err)
	}
	// Strings.
	if c, err := Compare(NewString("a"), NewString("b")); err != nil || c != -1 {
		t.Errorf("Compare(a,b) = %d,%v", c, err)
	}
	// Times.
	t0 := time.Unix(100, 0)
	t1 := time.Unix(200, 0)
	if c, err := Compare(NewTime(t0), NewTime(t1)); err != nil || c != -1 {
		t.Errorf("Compare(t0,t1) = %d,%v", c, err)
	}
	// Incomparable kinds error.
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("Compare(text,int) should error")
	}
	if _, err := Compare(Null, NewInt(1)); err == nil {
		t.Error("Compare(null,int) should error")
	}
	// NaN is ordered deterministically.
	if c, _ := Compare(NewFloat(math.NaN()), NewFloat(1)); c != -1 {
		t.Errorf("NaN should order first, got %d", c)
	}
	if c, _ := Compare(NewFloat(1), NewFloat(math.NaN())); c != 1 {
		t.Errorf("value vs NaN should be 1, got %d", c)
	}
	if c, _ := Compare(NewFloat(math.NaN()), NewFloat(math.NaN())); c != 0 {
		t.Errorf("NaN vs NaN should be 0, got %d", c)
	}
}

func TestComparable(t *testing.T) {
	if !Comparable(KindInt, KindFloat) {
		t.Error("int and float should be comparable")
	}
	if Comparable(KindString, KindInt) {
		t.Error("string and int should not be comparable")
	}
	if Comparable(KindNull, KindNull) {
		t.Error("null comparable to nothing")
	}
	if !Comparable(KindTime, KindTime) {
		t.Error("time comparable to itself")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Null, Null) {
		t.Error("Equal(NULL, NULL) should be true for identity purposes")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("Equal(NULL, 0) should be false")
	}
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("Equal(3, 3.0) should be true")
	}
	if Equal(NewString("a"), NewInt(1)) {
		t.Error("Equal across incomparable kinds should be false")
	}
}

func TestLessTotalOrder(t *testing.T) {
	vals := []Value{
		NewString("zebra"), NewInt(5), Null, NewFloat(-1.5), NewBool(true),
		NewTime(time.Unix(10, 0)), NewString("apple"), NewInt(-3), Null,
	}
	sort.Slice(vals, func(i, j int) bool { return Less(vals[i], vals[j]) })
	// NULLs first.
	if !vals[0].IsNull() || !vals[1].IsNull() {
		t.Fatalf("NULLs must sort first: %v", vals)
	}
	// Transitivity / antisymmetry spot checks via sort.SliceIsSorted.
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return Less(vals[i], vals[j]) }) {
		t.Fatal("sorted slice not sorted")
	}
	for i := range vals {
		if Less(vals[i], vals[i]) {
			t.Fatalf("Less must be irreflexive at %v", vals[i])
		}
	}
}

func TestLessPropertyIrreflexiveAntisymmetric(t *testing.T) {
	gen := func(seed int64) Value {
		switch seed % 5 {
		case 0:
			return Null
		case 1:
			return NewInt(seed)
		case 2:
			return NewFloat(float64(seed) / 3)
		case 3:
			return NewString(time.Unix(seed%1000, 0).String())
		default:
			return NewTimeNanos(seed)
		}
	}
	f := func(a, b int64) bool {
		va, vb := gen(a), gen(b)
		if Less(va, va) || Less(vb, vb) {
			return false
		}
		// Antisymmetry: not both Less(a,b) and Less(b,a).
		return !(Less(va, vb) && Less(vb, va))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseTime(t *testing.T) {
	got, err := ParseTime("2006-03-15 14:20:05")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2006, 3, 15, 14, 20, 5, 0, time.UTC)
	if !got.Equal(want) {
		t.Errorf("ParseTime = %v, want %v", got, want)
	}
	if _, err := ParseTime("not a time"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ParseTime("2006-03-15"); err != nil {
		t.Errorf("date-only form should parse: %v", err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "BIGINT",
		KindFloat: "DOUBLE", KindString: "TEXT", KindTime: "TIMESTAMP",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
