// Package types defines the value model shared by every layer of the TRAC
// engine: SQL literals, stored tuples, expression evaluation, and the
// domain descriptions used by satisfiability reasoning and brute-force
// relevant-source enumeration.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The value kinds supported by the engine.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "TEXT"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// TimeLayout is the canonical textual form for timestamps, matching the
// paper's examples ("2006-03-15 14:20:05").
const TimeLayout = "2006-01-02 15:04:05"

// Value is a tagged union holding one SQL value. The zero Value is NULL.
//
// Time values are stored as Unix nanoseconds in the integer slot so that
// comparison and arithmetic stay allocation-free on the hot path.
type Value struct {
	kind Kind
	i    int64 // KindInt, KindTime (unix nanos), KindBool (0/1)
	f    float64
	s    string
}

// Null is the NULL value.
var Null = Value{}

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewInt returns a 64-bit integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a double-precision value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a text value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewTime returns a timestamp value with nanosecond precision.
func NewTime(t time.Time) Value { return Value{kind: KindTime, i: t.UnixNano()} }

// NewTimeNanos returns a timestamp value from raw Unix nanoseconds.
func NewTimeNanos(ns int64) Value { return Value{kind: KindTime, i: ns} }

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It panics if the value is not a boolean;
// callers are expected to have checked Kind.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// Int returns the integer payload.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the floating-point payload.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Time returns the timestamp payload.
func (v Value) Time() time.Time {
	if v.kind != KindTime {
		panic(fmt.Sprintf("types: Time() on %s value", v.kind))
	}
	return time.Unix(0, v.i)
}

// TimeNanos returns the timestamp payload as Unix nanoseconds.
func (v Value) TimeNanos() int64 {
	if v.kind != KindTime {
		panic(fmt.Sprintf("types: TimeNanos() on %s value", v.kind))
	}
	return v.i
}

// AsFloat converts a numeric value (int or float) to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value for display (unquoted strings).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindTime:
		return time.Unix(0, v.i).UTC().Format(TimeLayout)
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// SQL renders the value as a SQL literal suitable for re-parsing, e.g. by the
// recency-query generator.
func (v Value) SQL() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindTime:
		return "TIMESTAMP '" + time.Unix(0, v.i).UTC().Format(TimeLayout) + "'"
	default:
		return "NULL"
	}
}

// Comparable reports whether two kinds can be ordered against each other.
// Numeric kinds are mutually comparable; every other kind only compares to
// itself. NULL compares to nothing (SQL unknown semantics are handled by the
// evaluator, not here).
func Comparable(a, b Kind) bool {
	if a == KindNull || b == KindNull {
		return false
	}
	if a == b {
		return true
	}
	return isNumeric(a) && isNumeric(b)
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// Compare orders two non-NULL values: -1 if a < b, 0 if equal, +1 if a > b.
// It returns an error for incomparable kinds (e.g. TEXT vs BIGINT); the SQL
// layer surfaces that as a type error rather than silently coercing.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, fmt.Errorf("types: cannot compare NULL values")
	}
	if a.kind == b.kind {
		switch a.kind {
		case KindBool, KindInt, KindTime:
			return cmpInt64(a.i, b.i), nil
		case KindFloat:
			return cmpFloat64(a.f, b.f), nil
		case KindString:
			return strings.Compare(a.s, b.s), nil
		}
	}
	if isNumeric(a.kind) && isNumeric(b.kind) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return cmpFloat64(af, bf), nil
	}
	return 0, fmt.Errorf("types: cannot compare %s to %s", a.kind, b.kind)
}

// Equal reports whether two values are equal under Compare semantics.
// Two NULLs are considered identical here (useful for tuple identity and
// index keys); SQL's NULL = NULL → UNKNOWN is the evaluator's business.
func Equal(a, b Value) bool {
	if a.kind == KindNull && b.kind == KindNull {
		return true
	}
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Less is a total order over all values, NULLs first, then by kind for
// incomparable kinds. It is used for index keys and ORDER BY, where a
// deterministic total order is required even across kinds.
func Less(a, b Value) bool {
	if a.kind == KindNull {
		return b.kind != KindNull
	}
	if b.kind == KindNull {
		return false
	}
	if c, err := Compare(a, b); err == nil {
		return c < 0
	}
	return kindRank(a.kind) < kindRank(b.kind)
}

func kindRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	case KindTime:
		return 4
	default:
		return 5
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	default:
		// NaN: order NaNs first deterministically.
		if math.IsNaN(a) && !math.IsNaN(b) {
			return -1
		}
		if !math.IsNaN(a) && math.IsNaN(b) {
			return 1
		}
		return 0
	}
}

// ParseTime parses the canonical timestamp layout, accepting an optional
// fractional-second suffix.
func ParseTime(s string) (time.Time, error) {
	for _, layout := range []string{TimeLayout, "2006-01-02 15:04:05.999999999", "2006-01-02", time.RFC3339} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("types: cannot parse timestamp %q", s)
}
