package types

import (
	"fmt"
	"sort"
	"strings"
)

// DomainKind classifies how a column's domain is described in the catalog.
//
// The paper's definitions of a "relevant" data source quantify over column
// domains: a source is relevant if *some* tuple drawn from the domains could
// satisfy the query. Satisfiability reasoning (internal/core/sat) and the
// brute-force evaluator (internal/core/bruteforce) both consume these
// descriptions; ordinary query execution ignores them.
type DomainKind uint8

const (
	// DomainUnbounded means the column can hold any value of its kind.
	DomainUnbounded DomainKind = iota
	// DomainFinite means the column's legal values are exactly Values.
	DomainFinite
	// DomainIntRange means the column holds integers in [MinInt, MaxInt].
	DomainIntRange
)

// Domain describes the set of legal values for a column.
type Domain struct {
	Kind      DomainKind
	ValueKind Kind    // the kind of every member value
	Values    []Value // DomainFinite: sorted ascending, deduplicated
	MinInt    int64   // DomainIntRange bounds, inclusive
	MaxInt    int64
}

// UnboundedDomain returns the domain of all values of kind k.
func UnboundedDomain(k Kind) Domain {
	return Domain{Kind: DomainUnbounded, ValueKind: k}
}

// FiniteDomain returns a finite domain over the given values. The values are
// sorted and deduplicated; they must all share one kind.
func FiniteDomain(vals ...Value) (Domain, error) {
	if len(vals) == 0 {
		return Domain{}, fmt.Errorf("types: finite domain must be non-empty")
	}
	k := vals[0].Kind()
	for _, v := range vals {
		if v.Kind() != k {
			return Domain{}, fmt.Errorf("types: finite domain mixes %s and %s", k, v.Kind())
		}
	}
	sorted := make([]Value, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return Less(sorted[i], sorted[j]) })
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if !Equal(out[len(out)-1], v) {
			out = append(out, v)
		}
	}
	return Domain{Kind: DomainFinite, ValueKind: k, Values: out}, nil
}

// MustFiniteDomain is FiniteDomain for static fixtures; it panics on error.
func MustFiniteDomain(vals ...Value) Domain {
	d, err := FiniteDomain(vals...)
	if err != nil {
		panic(err)
	}
	return d
}

// FiniteStringDomain builds a finite domain from string members.
func FiniteStringDomain(ss ...string) Domain {
	vals := make([]Value, len(ss))
	for i, s := range ss {
		vals[i] = NewString(s)
	}
	return MustFiniteDomain(vals...)
}

// IntRangeDomain returns the domain of integers in [min, max].
func IntRangeDomain(min, max int64) (Domain, error) {
	if min > max {
		return Domain{}, fmt.Errorf("types: empty int range [%d,%d]", min, max)
	}
	return Domain{Kind: DomainIntRange, ValueKind: KindInt, MinInt: min, MaxInt: max}, nil
}

// IsFinite reports whether the domain can be enumerated.
func (d Domain) IsFinite() bool {
	return d.Kind == DomainFinite || d.Kind == DomainIntRange
}

// Size returns the cardinality of a finite domain and ok=false otherwise.
func (d Domain) Size() (int64, bool) {
	switch d.Kind {
	case DomainFinite:
		return int64(len(d.Values)), true
	case DomainIntRange:
		return d.MaxInt - d.MinInt + 1, true
	default:
		return 0, false
	}
}

// Contains reports whether v is a member of the domain. NULL is never a
// member: the schema model assumes monitored columns are populated.
func (d Domain) Contains(v Value) bool {
	if v.IsNull() {
		return false
	}
	switch d.Kind {
	case DomainUnbounded:
		return v.Kind() == d.ValueKind ||
			(isNumeric(v.Kind()) && isNumeric(d.ValueKind))
	case DomainFinite:
		i := sort.Search(len(d.Values), func(i int) bool { return !Less(d.Values[i], v) })
		return i < len(d.Values) && Equal(d.Values[i], v)
	case DomainIntRange:
		if v.Kind() != KindInt {
			return false
		}
		return v.Int() >= d.MinInt && v.Int() <= d.MaxInt
	default:
		return false
	}
}

// Enumerate returns all members of a finite domain in ascending order, or
// ok=false for an unbounded domain.
func (d Domain) Enumerate() ([]Value, bool) {
	switch d.Kind {
	case DomainFinite:
		out := make([]Value, len(d.Values))
		copy(out, d.Values)
		return out, true
	case DomainIntRange:
		n := d.MaxInt - d.MinInt + 1
		out := make([]Value, 0, n)
		for i := d.MinInt; i <= d.MaxInt; i++ {
			out = append(out, NewInt(i))
		}
		return out, true
	default:
		return nil, false
	}
}

// String renders the domain for diagnostics.
func (d Domain) String() string {
	switch d.Kind {
	case DomainUnbounded:
		return fmt.Sprintf("any %s", d.ValueKind)
	case DomainFinite:
		parts := make([]string, 0, len(d.Values))
		for _, v := range d.Values {
			parts = append(parts, v.String())
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case DomainIntRange:
		return fmt.Sprintf("[%d..%d]", d.MinInt, d.MaxInt)
	default:
		return "invalid domain"
	}
}
