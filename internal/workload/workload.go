// Package workload generates the paper's synthetic evaluation data (§5.2):
// an Activity table with a fixed total row count, swept across (number of
// data sources) × (data ratio) = total, plus a Routing table and a
// Heartbeat row per source, with B-tree indexes on the data source columns.
// It also provides the paper's four test queries Q1–Q4 verbatim.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"trac/internal/engine"
	"trac/internal/storage"
	"trac/internal/txn"
	"trac/internal/types"
)

// Spec parameterizes one evaluation dataset.
type Spec struct {
	// TotalRows is the Activity row count (the paper fixes 10,000,000; the
	// default here is smaller so the full sweep runs on a laptop, and the
	// benchmark harness scales it up on request).
	TotalRows int
	// DataSources is the number of sources; DataRatio = TotalRows /
	// DataSources rows per source.
	DataSources int
	// Seed drives value assignment.
	Seed int64
	// Start is the first event timestamp.
	Start time.Time
	// StaleSources marks this many sources (the highest-numbered ones) as
	// extremely out of date in Heartbeat, for exceptional-source
	// experiments. Zero for the paper's performance sweeps.
	StaleSources int
}

func (s Spec) withDefaults() Spec {
	if s.TotalRows == 0 {
		s.TotalRows = 100_000
	}
	if s.DataSources == 0 {
		s.DataSources = 1_000
	}
	if s.Start.IsZero() {
		s.Start = time.Date(2006, 3, 15, 0, 0, 0, 0, time.UTC)
	}
	return s
}

// DataRatio returns rows per source.
func (s Spec) DataRatio() int {
	sp := s.withDefaults()
	return sp.TotalRows / sp.DataSources
}

// Build creates the Activity/Routing/Heartbeat schema and loads the
// dataset into a fresh database. Loading bypasses the SQL layer (bulk
// direct inserts in large transactions) because generating up to 10^7 rows
// through the parser would only measure the parser.
func Build(spec Spec) (*engine.DB, error) {
	spec = spec.withDefaults()
	if spec.TotalRows%spec.DataSources != 0 {
		return nil, fmt.Errorf("workload: TotalRows %d not divisible by DataSources %d",
			spec.TotalRows, spec.DataSources)
	}
	db := engine.New()
	for _, sql := range []string{
		`CREATE TABLE Activity (mach_id TEXT, value TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Routing (mach_id TEXT, neighbor TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`,
	} {
		if _, err := db.Exec(sql); err != nil {
			return nil, err
		}
	}
	act, _ := db.Catalog().Get("Activity")
	rout, _ := db.Catalog().Get("Routing")
	hb, _ := db.Catalog().Get("Heartbeat")
	act.Schema.SetSourceColumn("mach_id")
	rout.Schema.SetSourceColumn("mach_id")
	act.Schema.Columns[1].Domain = types.FiniteStringDomain("busy", "idle")
	// The metadata writes above bypass Exec; settle the catalog version so
	// no recency plan compiled mid-build survives.
	db.Catalog().BumpVersion()

	rng := rand.New(rand.NewSource(spec.Seed))
	ratio := spec.TotalRows / spec.DataSources
	mgr := db.Manager()

	// Activity: ratio rows per source, alternating idle/busy randomly.
	tick := time.Second
	if err := bulkLoad(mgr, act, spec.TotalRows, func(i int) []types.Value {
		src := 1 + i/ratio
		val := "busy"
		if rng.Intn(2) == 0 {
			val = "idle"
		}
		return []types.Value{
			types.NewString(sourceName(src)),
			types.NewString(val),
			types.NewTime(spec.Start.Add(time.Duration(i%ratio) * tick)),
		}
	}); err != nil {
		return nil, err
	}

	// Routing: one row per source, mapping the machine set onto itself
	// (the assumption the paper's fpr analysis states for Q3/Q4).
	if err := bulkLoad(mgr, rout, spec.DataSources, func(i int) []types.Value {
		return []types.Value{
			types.NewString(sourceName(i + 1)),
			types.NewString(sourceName(i + 1)),
			types.NewTime(spec.Start),
		}
	}); err != nil {
		return nil, err
	}

	// Heartbeat: one row per source; recency near the end of the event
	// range, with stale outliers if requested.
	recencyBase := spec.Start.Add(time.Duration(ratio) * tick)
	if err := bulkLoad(mgr, hb, spec.DataSources, func(i int) []types.Value {
		rec := recencyBase.Add(time.Duration(i%600) * time.Second)
		if spec.StaleSources > 0 && i >= spec.DataSources-spec.StaleSources {
			rec = spec.Start.Add(-24 * time.Hour)
		}
		return []types.Value{
			types.NewString(sourceName(i + 1)),
			types.NewTime(rec),
		}
	}); err != nil {
		return nil, err
	}

	// Indexes on the data source columns, as in the paper's setup.
	for _, idx := range []struct{ table, col string }{
		{"Activity", "mach_id"}, {"Routing", "mach_id"}, {"Heartbeat", "sid"},
	} {
		tbl, _ := db.Catalog().Get(idx.table)
		if err := tbl.CreateIndex(idx.col); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// bulkLoad inserts n generated rows in chunked transactions.
func bulkLoad(mgr *txn.Manager, tbl *storage.Table, n int, gen func(i int) []types.Value) error {
	const chunk = 50_000
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		tx := mgr.Begin()
		for i := lo; i < hi; i++ {
			if err := tx.InsertRow(tbl, storage.NewRow(gen(i), 0)); err != nil {
				tx.Abort()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// sourceName follows the paper's machine naming ("Tao1", "Tao10", ...).
func sourceName(i int) string { return fmt.Sprintf("Tao%d", i) }

// SourceName exports the naming scheme.
func SourceName(i int) string { return sourceName(i) }

// The paper's six probe machines used by Q1–Q4.
var probeMachines = []string{"Tao1", "Tao10", "Tao100", "Tao1000", "Tao10000", "Tao100000"}

// ProbeList renders the IN-list of the paper's queries.
func ProbeList() string {
	out := ""
	for i, m := range probeMachines {
		if i > 0 {
			out += ","
		}
		out += "'" + m + "'"
	}
	return out
}

// NumProbes is the size of the paper's IN-list (6).
const NumProbes = 6

// Q1 is the paper's first test query: single relation, very selective.
func Q1() string {
	return `SELECT COUNT(*) FROM Activity A WHERE A.mach_id IN (` + ProbeList() + `) AND A.value = 'idle'`
}

// Q2 is the paper's second test query: single relation, non-selective.
func Q2() string {
	return `SELECT COUNT(*) FROM Activity A WHERE A.mach_id NOT IN (` + ProbeList() + `) AND A.value = 'idle'`
}

// Q3 is the paper's third test query: join with a selective predicate on
// Routing.
func Q3() string {
	return `SELECT COUNT(*) FROM Routing R, Activity A WHERE R.mach_id IN (` + ProbeList() +
		`) AND R.neighbor = A.mach_id AND A.value = 'idle'`
}

// Q4 is the paper's fourth test query: join with a non-selective predicate
// on Routing.
func Q4() string {
	return `SELECT COUNT(*) FROM Routing R, Activity A WHERE R.mach_id NOT IN (` + ProbeList() +
		`) AND R.neighbor = A.mach_id AND A.value = 'idle'`
}

// Query returns Qn by name ("Q1".."Q4").
func Query(name string) (string, error) {
	switch name {
	case "Q1":
		return Q1(), nil
	case "Q2":
		return Q2(), nil
	case "Q3":
		return Q3(), nil
	case "Q4":
		return Q4(), nil
	default:
		return "", fmt.Errorf("workload: unknown query %q", name)
	}
}

// ExistingProbes counts how many of the six probe machines exist for a
// given source count (e.g. with 1,000 sources only Tao1/Tao10/Tao100/
// Tao1000 exist).
func ExistingProbes(sources int) int {
	n := 0
	for _, p := range []int{1, 10, 100, 1000, 10000, 100000} {
		if p <= sources {
			n++
		}
	}
	return n
}

// ExpectedRelevant returns |S(Q)| analytically for the paper's four
// queries over this generator's data (used by the fpr table):
//
//	Q1/Q3: the probe machines that exist.
//	Q2/Q4: every source except the existing probes.
func ExpectedRelevant(query string, sources int) (int, error) {
	probes := ExistingProbes(sources)
	switch query {
	case "Q1", "Q3":
		return probes, nil
	case "Q2", "Q4":
		return sources - probes, nil
	default:
		return 0, fmt.Errorf("workload: unknown query %q", query)
	}
}
