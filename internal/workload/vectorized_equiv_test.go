package workload_test

import (
	"fmt"
	"sort"
	"testing"

	"trac/internal/core/recgen"
	"trac/internal/engine"
	"trac/internal/exec"
	"trac/internal/sqlparser"
	"trac/internal/workload"
)

// equivCorpus assembles the query corpus: the paper's four test queries,
// the recency-report query generated for each of them, and ad-hoc shapes
// covering NULL/UNKNOWN predicates, grouping, ordering, DISTINCT, joins
// and UNION.
func equivCorpus(t *testing.T, db *engine.DB) []string {
	t.Helper()
	var corpus []string
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4"} {
		sql, err := workload.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, sql)
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gen, err := recgen.Generate(sel, db.Catalog(), recgen.Options{})
		if err != nil {
			t.Fatalf("recgen %s: %v", name, err)
		}
		if !gen.Empty {
			corpus = append(corpus, gen.SQL)
		}
	}
	corpus = append(corpus,
		`SELECT mach_id, value FROM Activity WHERE value = 'idle'`,
		`SELECT mach_id FROM Activity WHERE value <> 'idle' AND event_time > '2006-03-15 00:00:30'`,
		`SELECT COUNT(*), MIN(event_time), MAX(event_time) FROM Activity`,
		`SELECT value, COUNT(*) FROM Activity GROUP BY value ORDER BY value`,
		`SELECT DISTINCT value FROM Activity ORDER BY value`,
		`SELECT A.mach_id FROM Activity A, Routing R WHERE A.mach_id = R.neighbor AND A.value = 'busy' ORDER BY A.mach_id LIMIT 20`,
		`SELECT mach_id FROM Activity WHERE value LIKE 'b%' ORDER BY mach_id LIMIT 10`,
		`SELECT mach_id FROM Activity WHERE value IN ('idle') UNION SELECT mach_id FROM Routing WHERE neighbor = 'Tao1'`,
		// NULL/UNKNOWN semantics over a table with NULLs in every column.
		`SELECT id FROM NullProbe WHERE name = 'idle'`,
		`SELECT id FROM NullProbe WHERE name <> 'idle'`,
		`SELECT id FROM NullProbe WHERE score > 0.4`,
		`SELECT id FROM NullProbe WHERE score <= 0.4`,
		`SELECT id FROM NullProbe WHERE name IN ('idle', 'down')`,
		`SELECT id FROM NullProbe WHERE name NOT IN ('idle')`,
		`SELECT id FROM NullProbe WHERE name IN ('idle', NULL)`,
		`SELECT id FROM NullProbe WHERE name NOT IN ('idle', NULL)`,
		`SELECT id FROM NullProbe WHERE score BETWEEN 0.1 AND 0.5`,
		`SELECT id FROM NullProbe WHERE name IS NULL`,
		`SELECT id FROM NullProbe WHERE name IS NOT NULL AND score IS NULL`,
		`SELECT id FROM NullProbe WHERE name = 'idle' OR score > 0.45`,
		`SELECT n.id, a.value FROM NullProbe n, Activity a WHERE n.name = a.value AND a.mach_id = 'Tao1'`,
	)
	corpus = append(corpus, groupByCorpus...)
	return corpus
}

// groupByCorpus exercises the aggregation pipeline across global and grouped
// shapes: COUNT(*) vs COUNT(col) NULL semantics, MIN/MAX ignoring NULLs,
// stat-pushdown-eligible global aggregates (bare scans with and without
// covering/pruning predicates), grouped aggregation over every operator
// (row, vectorized hash, morsel-parallel partial merge), HAVING, and
// aggregate-only ORDER BY. SUM/AVG appear only over INT columns: integer
// accumulation is exact and order-independent, so parallel partial merge and
// zone-stat folding cannot perturb the cross-mode comparison (float sums are
// inherently accumulation-order-sensitive).
var groupByCorpus = []string{
	`SELECT COUNT(*) FROM Activity`,
	`SELECT COUNT(*), MIN(mach_id), MAX(mach_id), MIN(event_time), MAX(event_time) FROM Activity`,
	`SELECT COUNT(*) FROM Activity WHERE value = 'idle'`,
	`SELECT COUNT(*), MAX(event_time) FROM Activity WHERE mach_id <> 'no-such-machine'`,
	`SELECT COUNT(*), COUNT(name), COUNT(score), SUM(id), AVG(id), MIN(id), MAX(id) FROM NullProbe`,
	`SELECT MIN(name), MAX(name), MIN(score), MAX(score) FROM NullProbe`,
	`SELECT COUNT(*) FROM NullProbe WHERE name IS NULL`,
	`SELECT COUNT(score) FROM NullProbe WHERE score IS NULL`,
	`SELECT value, COUNT(*), MIN(event_time), MAX(event_time) FROM Activity GROUP BY value ORDER BY value`,
	`SELECT mach_id, COUNT(*) FROM Activity GROUP BY mach_id ORDER BY mach_id LIMIT 10`,
	`SELECT name, COUNT(*), COUNT(score), SUM(id), AVG(id), MIN(id), MAX(id) FROM NullProbe GROUP BY name ORDER BY name`,
	`SELECT value, COUNT(*) FROM Activity WHERE mach_id LIKE 'src-%' GROUP BY value ORDER BY value`,
	`SELECT mach_id, COUNT(*) FROM Activity GROUP BY mach_id HAVING COUNT(*) > 2 ORDER BY mach_id LIMIT 5`,
	`SELECT SUM(id * 2), AVG(id + 1) FROM NullProbe`,
	`SELECT name, SUM(id + 1), MIN(id * 2) FROM NullProbe GROUP BY name ORDER BY name`,
}

func addNullProbe(t *testing.T, db *engine.DB) {
	t.Helper()
	db.MustExec(`CREATE TABLE NullProbe (id INT, name TEXT, score FLOAT)`)
	for _, row := range []string{
		`(1, 'idle', 0.1)`,
		`(2, NULL, 0.9)`,
		`(3, 'busy', NULL)`,
		`(4, NULL, NULL)`,
		`(5, 'down', 0.5)`,
		`(6, 'idle', 0.45)`,
	} {
		db.MustExec(`INSERT INTO NullProbe VALUES ` + row)
	}
}

// rowSet renders a result as a sorted multiset of canonical row keys.
func rowSet(res *engine.Result) []string {
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = exec.RowKey(r)
	}
	sort.Strings(keys)
	return keys
}

// runEquivModes runs every corpus query under tuple-at-a-time plans
// (DisableVectorized), vectorized plans, both forced onto the parallel
// morsel-driven path, and the vectorized variants again with zone-map stat
// pushdown disabled, asserting all result multisets are identical. The
// nopushdown modes pin down that answering global aggregates from segment
// stats returns exactly what scanning the same segments would have.
func runEquivModes(t *testing.T, db *engine.DB, corpus []string) {
	t.Helper()
	type mode struct {
		name                string
		disableVectorized   bool
		disableStatPushdown bool
		parallelThreshold   int
		maxParallel         int
	}
	modes := []mode{
		{name: "row", disableVectorized: true},
		{name: "vectorized"},
		{name: "vectorized-nopushdown", disableStatPushdown: true},
		{name: "vectorized-parallel", parallelThreshold: 50, maxParallel: 4},
		{name: "vectorized-parallel-nopushdown", disableStatPushdown: true, parallelThreshold: 50, maxParallel: 4},
		{name: "row-parallel", disableVectorized: true, parallelThreshold: 50, maxParallel: 4},
	}

	sawVectorized := false
	for qi, sql := range corpus {
		var baseline []string
		for _, m := range modes {
			pl := db.Planner()
			pl.DisableVectorized = m.disableVectorized
			pl.DisableStatPushdown = m.disableStatPushdown
			pl.ParallelThreshold = m.parallelThreshold
			pl.MaxParallel = m.maxParallel
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("q%d [%s] %s: %v", qi, m.name, sql, err)
			}
			if res.Vectorized {
				sawVectorized = true
			}
			if m.disableVectorized && res.Vectorized {
				t.Errorf("q%d [%s]: result claims vectorized with vectorization disabled", qi, m.name)
			}
			got := rowSet(res)
			if baseline == nil {
				baseline = got
				continue
			}
			if fmt.Sprint(got) != fmt.Sprint(baseline) {
				t.Errorf("q%d [%s] diverges from row baseline\nquery: %s\nrow:   %v\ngot:   %v",
					qi, m.name, sql, baseline, got)
			}
		}
		pl := db.Planner()
		pl.DisableVectorized = false
		pl.DisableStatPushdown = false
		pl.ParallelThreshold = 0
		pl.MaxParallel = 0
	}
	if !sawVectorized {
		t.Error("no corpus query ever executed vectorized")
	}
}

// TestVectorizedMatchesRowExecution is the batch/row equivalence property
// test over the plain (unsealed) workload heap.
func TestVectorizedMatchesRowExecution(t *testing.T) {
	db, err := workload.Build(workload.Spec{TotalRows: 4000, DataSources: 100})
	if err != nil {
		t.Fatal(err)
	}
	addNullProbe(t, db)
	runEquivModes(t, db, equivCorpus(t, db))
}

// TestMixedSealedUnsealedEquivalence repeats the 4-mode equivalence run
// over a dual-format heap: every table is sealed into column segments, then
// grown an unsealed row tail, so each scan crosses the zone-map-pruned
// columnar path and the row-kernel tail path within one query.
func TestMixedSealedUnsealedEquivalence(t *testing.T) {
	db, err := workload.Build(workload.Spec{TotalRows: 4000, DataSources: 100})
	if err != nil {
		t.Fatal(err)
	}
	addNullProbe(t, db)
	// Seal in small chunks so zone-map pruning has multiple segments to
	// work with, then append tail rows that stay below the threshold.
	for _, name := range db.Catalog().Names() {
		tbl, err := db.Catalog().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tbl.SetSealThreshold(300)
	}
	db.SealAll()
	db.MustExec(`INSERT INTO Activity VALUES ('src-tail', 'idle', '2006-03-15 00:01:00')`)
	db.MustExec(`INSERT INTO Activity VALUES ('src-tail', 'busy', NULL)`)
	db.MustExec(`INSERT INTO Routing VALUES ('src-tail', 'Tao1', '2006-03-15 00:01:00')`)
	db.MustExec(`INSERT INTO NullProbe VALUES (7, NULL, 0.45)`)
	db.MustExec(`INSERT INTO NullProbe VALUES (8, 'idle', NULL)`)

	act, err := db.Catalog().Get("Activity")
	if err != nil {
		t.Fatal(err)
	}
	if act.NumSegments() < 2 || act.NumVersions() == act.SealedRows() {
		t.Fatalf("Activity not mixed: %d segments, %d/%d rows sealed",
			act.NumSegments(), act.SealedRows(), act.NumVersions())
	}
	runEquivModes(t, db, equivCorpus(t, db))
}

// TestAggregateRacingAppends aggregates a sealed-plus-tail heap while a
// background writer keeps appending rows, cycling through every planner mode
// (row, vectorized with and without stat pushdown, parallel). Each snapshot
// must be internally consistent: COUNT(*) equals COUNT(mach_id) (the column
// is never NULL), and counts never move backwards across queries. Run under
// -race this also checks the stat-fold path reads zone maps and tails safely
// against concurrent inserts and seals.
func TestAggregateRacingAppends(t *testing.T) {
	db, err := workload.Build(workload.Spec{TotalRows: 1000, DataSources: 20})
	if err != nil {
		t.Fatal(err)
	}
	act, err := db.Catalog().Get("Activity")
	if err != nil {
		t.Fatal(err)
	}
	// Small threshold so the writer keeps pushing the tail over the seal
	// boundary mid-test: aggregates race against both appends and seals.
	act.SetSealThreshold(200)
	db.SealAll()

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf(
				`INSERT INTO Activity VALUES ('race-%03d', 'busy', '2006-03-15 00:02:00')`, i%50)); err != nil {
				done <- err
				return
			}
		}
	}()

	type mode struct {
		disableVectorized   bool
		disableStatPushdown bool
		parallelThreshold   int
		maxParallel         int
	}
	modes := []mode{
		{disableVectorized: true},
		{},
		{disableStatPushdown: true},
		{parallelThreshold: 50, maxParallel: 4},
	}
	var lastCount int64
	for iter := 0; iter < 40; iter++ {
		m := modes[iter%len(modes)]
		pl := db.Planner()
		pl.DisableVectorized = m.disableVectorized
		pl.DisableStatPushdown = m.disableStatPushdown
		pl.ParallelThreshold = m.parallelThreshold
		pl.MaxParallel = m.maxParallel
		res, err := db.Query(`SELECT COUNT(*), COUNT(mach_id) FROM Activity`)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("iter %d: got %d rows", iter, len(res.Rows))
		}
		star, col := res.Rows[0][0].Int(), res.Rows[0][1].Int()
		if star != col {
			t.Fatalf("iter %d: COUNT(*)=%d but COUNT(mach_id)=%d", iter, star, col)
		}
		if star < lastCount {
			t.Fatalf("iter %d: count went backwards %d -> %d", iter, lastCount, star)
		}
		lastCount = star
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}

	pl := db.Planner()
	pl.DisableVectorized = false
	pl.DisableStatPushdown = false
	pl.ParallelThreshold = 0
	pl.MaxParallel = 0
}
