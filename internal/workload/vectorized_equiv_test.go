package workload_test

import (
	"fmt"
	"testing"

	"trac/internal/engine"
	"trac/internal/workload"
)

// equivCorpus assembles the query corpus from the exported workload corpus:
// the paper's four test queries, the recency-report query generated for each
// of them, and ad-hoc shapes covering NULL/UNKNOWN predicates, grouping,
// ordering, DISTINCT, joins and UNION.
func equivCorpus(t *testing.T, db *engine.DB) []string {
	t.Helper()
	corpus, err := workload.EquivCorpus(db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func addNullProbe(t *testing.T, db *engine.DB) {
	t.Helper()
	for _, stmt := range workload.NullProbeStmts() {
		db.MustExec(stmt)
	}
}

// rowSet renders a result as a sorted multiset of canonical row keys.
func rowSet(res *engine.Result) []string {
	return workload.RowSet(res)
}

// runEquivModes runs every corpus query under tuple-at-a-time plans
// (DisableVectorized), vectorized plans, both forced onto the parallel
// morsel-driven path, and the vectorized variants again with zone-map stat
// pushdown disabled, asserting all result multisets are identical. The
// nopushdown modes pin down that answering global aggregates from segment
// stats returns exactly what scanning the same segments would have.
func runEquivModes(t *testing.T, db *engine.DB, corpus []string) {
	t.Helper()
	type mode struct {
		name                string
		disableVectorized   bool
		disableStatPushdown bool
		parallelThreshold   int
		maxParallel         int
	}
	modes := []mode{
		{name: "row", disableVectorized: true},
		{name: "vectorized"},
		{name: "vectorized-nopushdown", disableStatPushdown: true},
		{name: "vectorized-parallel", parallelThreshold: 50, maxParallel: 4},
		{name: "vectorized-parallel-nopushdown", disableStatPushdown: true, parallelThreshold: 50, maxParallel: 4},
		{name: "row-parallel", disableVectorized: true, parallelThreshold: 50, maxParallel: 4},
	}

	sawVectorized := false
	for qi, sql := range corpus {
		var baseline []string
		for _, m := range modes {
			pl := db.Planner()
			pl.DisableVectorized = m.disableVectorized
			pl.DisableStatPushdown = m.disableStatPushdown
			pl.ParallelThreshold = m.parallelThreshold
			pl.MaxParallel = m.maxParallel
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("q%d [%s] %s: %v", qi, m.name, sql, err)
			}
			if res.Vectorized {
				sawVectorized = true
			}
			if m.disableVectorized && res.Vectorized {
				t.Errorf("q%d [%s]: result claims vectorized with vectorization disabled", qi, m.name)
			}
			got := rowSet(res)
			if baseline == nil {
				baseline = got
				continue
			}
			if fmt.Sprint(got) != fmt.Sprint(baseline) {
				t.Errorf("q%d [%s] diverges from row baseline\nquery: %s\nrow:   %v\ngot:   %v",
					qi, m.name, sql, baseline, got)
			}
		}
		pl := db.Planner()
		pl.DisableVectorized = false
		pl.DisableStatPushdown = false
		pl.ParallelThreshold = 0
		pl.MaxParallel = 0
	}
	if !sawVectorized {
		t.Error("no corpus query ever executed vectorized")
	}
}

// TestVectorizedMatchesRowExecution is the batch/row equivalence property
// test over the plain (unsealed) workload heap.
func TestVectorizedMatchesRowExecution(t *testing.T) {
	db, err := workload.Build(workload.Spec{TotalRows: 4000, DataSources: 100})
	if err != nil {
		t.Fatal(err)
	}
	addNullProbe(t, db)
	runEquivModes(t, db, equivCorpus(t, db))
}

// TestMixedSealedUnsealedEquivalence repeats the 4-mode equivalence run
// over a dual-format heap: every table is sealed into column segments, then
// grown an unsealed row tail, so each scan crosses the zone-map-pruned
// columnar path and the row-kernel tail path within one query.
func TestMixedSealedUnsealedEquivalence(t *testing.T) {
	db, err := workload.Build(workload.Spec{TotalRows: 4000, DataSources: 100})
	if err != nil {
		t.Fatal(err)
	}
	addNullProbe(t, db)
	// Seal in small chunks so zone-map pruning has multiple segments to
	// work with, then append tail rows that stay below the threshold.
	for _, name := range db.Catalog().Names() {
		tbl, err := db.Catalog().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tbl.SetSealThreshold(300)
	}
	db.SealAll()
	db.MustExec(`INSERT INTO Activity VALUES ('src-tail', 'idle', '2006-03-15 00:01:00')`)
	db.MustExec(`INSERT INTO Activity VALUES ('src-tail', 'busy', NULL)`)
	db.MustExec(`INSERT INTO Routing VALUES ('src-tail', 'Tao1', '2006-03-15 00:01:00')`)
	db.MustExec(`INSERT INTO NullProbe VALUES (7, NULL, 0.45)`)
	db.MustExec(`INSERT INTO NullProbe VALUES (8, 'idle', NULL)`)

	act, err := db.Catalog().Get("Activity")
	if err != nil {
		t.Fatal(err)
	}
	if act.NumSegments() < 2 || act.NumVersions() == act.SealedRows() {
		t.Fatalf("Activity not mixed: %d segments, %d/%d rows sealed",
			act.NumSegments(), act.SealedRows(), act.NumVersions())
	}
	runEquivModes(t, db, equivCorpus(t, db))
}

// TestAggregateRacingAppends aggregates a sealed-plus-tail heap while a
// background writer keeps appending rows, cycling through every planner mode
// (row, vectorized with and without stat pushdown, parallel). Each snapshot
// must be internally consistent: COUNT(*) equals COUNT(mach_id) (the column
// is never NULL), and counts never move backwards across queries. Run under
// -race this also checks the stat-fold path reads zone maps and tails safely
// against concurrent inserts and seals.
func TestAggregateRacingAppends(t *testing.T) {
	db, err := workload.Build(workload.Spec{TotalRows: 1000, DataSources: 20})
	if err != nil {
		t.Fatal(err)
	}
	act, err := db.Catalog().Get("Activity")
	if err != nil {
		t.Fatal(err)
	}
	// Small threshold so the writer keeps pushing the tail over the seal
	// boundary mid-test: aggregates race against both appends and seals.
	act.SetSealThreshold(200)
	db.SealAll()

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf(
				`INSERT INTO Activity VALUES ('race-%03d', 'busy', '2006-03-15 00:02:00')`, i%50)); err != nil {
				done <- err
				return
			}
		}
	}()

	type mode struct {
		disableVectorized   bool
		disableStatPushdown bool
		parallelThreshold   int
		maxParallel         int
	}
	modes := []mode{
		{disableVectorized: true},
		{},
		{disableStatPushdown: true},
		{parallelThreshold: 50, maxParallel: 4},
	}
	var lastCount int64
	for iter := 0; iter < 40; iter++ {
		m := modes[iter%len(modes)]
		pl := db.Planner()
		pl.DisableVectorized = m.disableVectorized
		pl.DisableStatPushdown = m.disableStatPushdown
		pl.ParallelThreshold = m.parallelThreshold
		pl.MaxParallel = m.maxParallel
		res, err := db.Query(`SELECT COUNT(*), COUNT(mach_id) FROM Activity`)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("iter %d: got %d rows", iter, len(res.Rows))
		}
		star, col := res.Rows[0][0].Int(), res.Rows[0][1].Int()
		if star != col {
			t.Fatalf("iter %d: COUNT(*)=%d but COUNT(mach_id)=%d", iter, star, col)
		}
		if star < lastCount {
			t.Fatalf("iter %d: count went backwards %d -> %d", iter, lastCount, star)
		}
		lastCount = star
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}

	pl := db.Planner()
	pl.DisableVectorized = false
	pl.DisableStatPushdown = false
	pl.ParallelThreshold = 0
	pl.MaxParallel = 0
}
