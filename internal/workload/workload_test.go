package workload

import (
	"strings"
	"testing"
)

func TestBuildSmallDataset(t *testing.T) {
	db, err := Build(Spec{TotalRows: 1000, DataSources: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := func(sql string) int64 {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res.Rows[0][0].Int()
	}
	if n := count(`SELECT COUNT(*) FROM Activity`); n != 1000 {
		t.Errorf("Activity rows = %d", n)
	}
	if n := count(`SELECT COUNT(*) FROM Heartbeat`); n != 10 {
		t.Errorf("Heartbeat rows = %d", n)
	}
	if n := count(`SELECT COUNT(*) FROM Routing`); n != 10 {
		t.Errorf("Routing rows = %d", n)
	}
	// Each source has exactly ratio rows.
	if n := count(`SELECT COUNT(*) FROM Activity WHERE mach_id = 'Tao1'`); n != 100 {
		t.Errorf("Tao1 rows = %d, want 100", n)
	}
	if n := count(`SELECT COUNT(*) FROM Activity WHERE mach_id = 'Tao10'`); n != 100 {
		t.Errorf("Tao10 rows = %d, want 100", n)
	}
	// Routing self-map.
	res, _ := db.Query(`SELECT neighbor FROM Routing WHERE mach_id = 'Tao3'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Tao3" {
		t.Errorf("Routing self-map broken: %v", res.Rows)
	}
	// Source column metadata installed.
	act, _ := db.Catalog().Get("Activity")
	if act.Schema.SourceColumn != 0 {
		t.Error("Activity source column not set")
	}
	if act.Index(0) == nil {
		t.Error("Activity mach_id index missing")
	}
}

func TestBuildRejectsIndivisible(t *testing.T) {
	if _, err := Build(Spec{TotalRows: 1000, DataSources: 3}); err == nil {
		t.Error("non-divisible spec should fail")
	}
}

func TestStaleSources(t *testing.T) {
	db, err := Build(Spec{TotalRows: 100, DataSources: 10, StaleSources: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT sid FROM Heartbeat WHERE recency < '2006-03-15 00:00:00' ORDER BY sid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("stale sources = %v", res.Rows)
	}
}

func TestQueriesMatchPaperText(t *testing.T) {
	if !strings.Contains(Q1(), "A.mach_id IN ('Tao1','Tao10','Tao100','Tao1000','Tao10000','Tao100000')") {
		t.Errorf("Q1 = %s", Q1())
	}
	if !strings.Contains(Q2(), "NOT IN") {
		t.Errorf("Q2 = %s", Q2())
	}
	if !strings.Contains(Q3(), "R.neighbor = A.mach_id") {
		t.Errorf("Q3 = %s", Q3())
	}
	if !strings.Contains(Q4(), "NOT IN") || !strings.Contains(Q4(), "Routing R") {
		t.Errorf("Q4 = %s", Q4())
	}
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4"} {
		if _, err := Query(name); err != nil {
			t.Errorf("Query(%s): %v", name, err)
		}
	}
	if _, err := Query("Q9"); err == nil {
		t.Error("unknown query should fail")
	}
}

func TestQueriesRunOnDataset(t *testing.T) {
	db, err := Build(Spec{TotalRows: 10_000, DataSources: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4"} {
		sql, _ := Query(name)
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%s returned %d rows", name, len(res.Rows))
		}
	}
	// Q1 counts idle rows among existing probes (Tao1, Tao10, Tao100):
	// about half of 3*100 rows.
	res, _ := db.Query(Q1())
	n := res.Rows[0][0].Int()
	if n < 100 || n > 200 {
		t.Errorf("Q1 count = %d, expected ~150", n)
	}
}

func TestExistingProbes(t *testing.T) {
	cases := map[int]int{1: 1, 10: 2, 100: 3, 1000: 4, 10000: 5, 100000: 6, 1000000: 6, 5: 1, 999: 3}
	for sources, want := range cases {
		if got := ExistingProbes(sources); got != want {
			t.Errorf("ExistingProbes(%d) = %d, want %d", sources, got, want)
		}
	}
}

func TestExpectedRelevant(t *testing.T) {
	if n, _ := ExpectedRelevant("Q1", 100000); n != 6 {
		t.Errorf("Q1 expected = %d", n)
	}
	if n, _ := ExpectedRelevant("Q2", 100000); n != 99994 {
		t.Errorf("Q2 expected = %d", n)
	}
	if n, _ := ExpectedRelevant("Q3", 1000); n != 4 {
		t.Errorf("Q3 expected = %d", n)
	}
	if n, _ := ExpectedRelevant("Q4", 1000); n != 996 {
		t.Errorf("Q4 expected = %d", n)
	}
	if _, err := ExpectedRelevant("Q9", 10); err == nil {
		t.Error("unknown query should fail")
	}
}

func TestDataRatio(t *testing.T) {
	s := Spec{TotalRows: 1000, DataSources: 10}
	if s.DataRatio() != 100 {
		t.Errorf("ratio = %d", s.DataRatio())
	}
}
