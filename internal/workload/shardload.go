package workload

import (
	"fmt"
	"math/rand"
	"time"

	"trac/internal/engine"
	"trac/internal/shard"
	"trac/internal/types"
)

// BuildSharded creates the same schema and dataset as Build inside an
// n-shard router: Activity is hash-partitioned on mach_id, Routing and
// Heartbeat are replicated to every shard, and row generation is identical
// row for row (same Spec, same seed, same order) so the union of the shard
// partitions is exactly the unsharded dataset — the property the cross-shard
// equivalence suite compares against. Rows are materialized before routing,
// so this is intended for test- and bench-scale specs, not the paper's 10^7
// sweep.
func BuildSharded(spec Spec, n int) (*shard.Router, error) {
	spec = spec.withDefaults()
	if spec.TotalRows%spec.DataSources != 0 {
		return nil, fmt.Errorf("workload: TotalRows %d not divisible by DataSources %d",
			spec.TotalRows, spec.DataSources)
	}
	r, err := shard.New(n)
	if err != nil {
		return nil, err
	}
	for _, sql := range []string{
		`CREATE TABLE Activity (mach_id TEXT, value TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Routing (mach_id TEXT, neighbor TEXT, event_time TIMESTAMP)`,
		`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`,
	} {
		if _, err := r.Exec(sql); err != nil {
			return nil, err
		}
	}
	if err := r.Partition("Activity", "mach_id"); err != nil {
		return nil, err
	}
	// Source metadata and value domains, applied uniformly so every shard's
	// catalog stays version- and content-identical (the DDL-broadcast
	// invariant the consistent cut depends on). The writes bypass Exec, so
	// settle with one version bump per shard, exactly as Build does.
	if err := r.Atomic(func(db *engine.DB) error {
		act, err := db.Catalog().Get("Activity")
		if err != nil {
			return err
		}
		rout, err := db.Catalog().Get("Routing")
		if err != nil {
			return err
		}
		act.Schema.SetSourceColumn("mach_id")
		rout.Schema.SetSourceColumn("mach_id")
		act.Schema.Columns[1].Domain = types.FiniteStringDomain("busy", "idle")
		db.Catalog().BumpVersion()
		return nil
	}); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	ratio := spec.TotalRows / spec.DataSources
	tick := time.Second

	actRows := make([][]types.Value, spec.TotalRows)
	for i := range actRows {
		src := 1 + i/ratio
		val := "busy"
		if rng.Intn(2) == 0 {
			val = "idle"
		}
		actRows[i] = []types.Value{
			types.NewString(sourceName(src)),
			types.NewString(val),
			types.NewTime(spec.Start.Add(time.Duration(i%ratio) * tick)),
		}
	}
	if err := r.LoadRows("Activity", actRows); err != nil {
		return nil, err
	}

	routRows := make([][]types.Value, spec.DataSources)
	for i := range routRows {
		routRows[i] = []types.Value{
			types.NewString(sourceName(i + 1)),
			types.NewString(sourceName(i + 1)),
			types.NewTime(spec.Start),
		}
	}
	if err := r.LoadRows("Routing", routRows); err != nil {
		return nil, err
	}

	recencyBase := spec.Start.Add(time.Duration(ratio) * tick)
	hbRows := make([][]types.Value, spec.DataSources)
	for i := range hbRows {
		rec := recencyBase.Add(time.Duration(i%600) * time.Second)
		if spec.StaleSources > 0 && i >= spec.DataSources-spec.StaleSources {
			rec = spec.Start.Add(-24 * time.Hour)
		}
		hbRows[i] = []types.Value{
			types.NewString(sourceName(i + 1)),
			types.NewTime(rec),
		}
	}
	if err := r.LoadRows("Heartbeat", hbRows); err != nil {
		return nil, err
	}

	return r, r.Atomic(func(db *engine.DB) error {
		for _, idx := range []struct{ table, col string }{
			{"Activity", "mach_id"}, {"Routing", "mach_id"}, {"Heartbeat", "sid"},
		} {
			tbl, err := db.Catalog().Get(idx.table)
			if err != nil {
				return err
			}
			if err := tbl.CreateIndex(idx.col); err != nil {
				return err
			}
		}
		return nil
	})
}
