package workload

import (
	"fmt"
	"sort"

	"trac/internal/core/recgen"
	"trac/internal/engine"
	"trac/internal/exec"
	"trac/internal/sqlparser"
	"trac/internal/storage"
)

// AdHocCorpus is the non-generated half of the equivalence corpus: shapes
// covering NULL/UNKNOWN predicates, ordering, DISTINCT, joins and UNION over
// the workload tables plus the NullProbe fixture.
var AdHocCorpus = []string{
	`SELECT mach_id, value FROM Activity WHERE value = 'idle'`,
	`SELECT mach_id FROM Activity WHERE value <> 'idle' AND event_time > '2006-03-15 00:00:30'`,
	`SELECT COUNT(*), MIN(event_time), MAX(event_time) FROM Activity`,
	`SELECT value, COUNT(*) FROM Activity GROUP BY value ORDER BY value`,
	`SELECT DISTINCT value FROM Activity ORDER BY value`,
	`SELECT A.mach_id FROM Activity A, Routing R WHERE A.mach_id = R.neighbor AND A.value = 'busy' ORDER BY A.mach_id LIMIT 20`,
	`SELECT mach_id FROM Activity WHERE value LIKE 'b%' ORDER BY mach_id LIMIT 10`,
	`SELECT mach_id FROM Activity WHERE value IN ('idle') UNION SELECT mach_id FROM Routing WHERE neighbor = 'Tao1'`,
	// NULL/UNKNOWN semantics over a table with NULLs in every column.
	`SELECT id FROM NullProbe WHERE name = 'idle'`,
	`SELECT id FROM NullProbe WHERE name <> 'idle'`,
	`SELECT id FROM NullProbe WHERE score > 0.4`,
	`SELECT id FROM NullProbe WHERE score <= 0.4`,
	`SELECT id FROM NullProbe WHERE name IN ('idle', 'down')`,
	`SELECT id FROM NullProbe WHERE name NOT IN ('idle')`,
	`SELECT id FROM NullProbe WHERE name IN ('idle', NULL)`,
	`SELECT id FROM NullProbe WHERE name NOT IN ('idle', NULL)`,
	`SELECT id FROM NullProbe WHERE score BETWEEN 0.1 AND 0.5`,
	`SELECT id FROM NullProbe WHERE name IS NULL`,
	`SELECT id FROM NullProbe WHERE name IS NOT NULL AND score IS NULL`,
	`SELECT id FROM NullProbe WHERE name = 'idle' OR score > 0.45`,
	`SELECT n.id, a.value FROM NullProbe n, Activity a WHERE n.name = a.value AND a.mach_id = 'Tao1'`,
}

// GroupByCorpus exercises the aggregation pipeline across global and grouped
// shapes: COUNT(*) vs COUNT(col) NULL semantics, MIN/MAX ignoring NULLs,
// stat-pushdown-eligible global aggregates (bare scans with and without
// covering/pruning predicates), grouped aggregation over every operator
// (row, vectorized hash, morsel-parallel partial merge, sharded partial
// merge), HAVING, and aggregate-only ORDER BY. SUM/AVG appear only over INT
// columns: integer accumulation is exact and order-independent, so parallel
// partial merge, zone-stat folding and cross-shard merge cannot perturb the
// cross-mode comparison (float sums are inherently accumulation-order-
// sensitive).
var GroupByCorpus = []string{
	`SELECT COUNT(*) FROM Activity`,
	`SELECT COUNT(*), MIN(mach_id), MAX(mach_id), MIN(event_time), MAX(event_time) FROM Activity`,
	`SELECT COUNT(*) FROM Activity WHERE value = 'idle'`,
	`SELECT COUNT(*), MAX(event_time) FROM Activity WHERE mach_id <> 'no-such-machine'`,
	`SELECT COUNT(*), COUNT(name), COUNT(score), SUM(id), AVG(id), MIN(id), MAX(id) FROM NullProbe`,
	`SELECT MIN(name), MAX(name), MIN(score), MAX(score) FROM NullProbe`,
	`SELECT COUNT(*) FROM NullProbe WHERE name IS NULL`,
	`SELECT COUNT(score) FROM NullProbe WHERE score IS NULL`,
	`SELECT value, COUNT(*), MIN(event_time), MAX(event_time) FROM Activity GROUP BY value ORDER BY value`,
	`SELECT mach_id, COUNT(*) FROM Activity GROUP BY mach_id ORDER BY mach_id LIMIT 10`,
	`SELECT name, COUNT(*), COUNT(score), SUM(id), AVG(id), MIN(id), MAX(id) FROM NullProbe GROUP BY name ORDER BY name`,
	`SELECT value, COUNT(*) FROM Activity WHERE mach_id LIKE 'src-%' GROUP BY value ORDER BY value`,
	`SELECT mach_id, COUNT(*) FROM Activity GROUP BY mach_id HAVING COUNT(*) > 2 ORDER BY mach_id LIMIT 5`,
	`SELECT SUM(id * 2), AVG(id + 1) FROM NullProbe`,
	`SELECT name, SUM(id + 1), MIN(id * 2) FROM NullProbe GROUP BY name ORDER BY name`,
}

// NullProbeStmts returns the DDL + inserts that create the NullProbe fixture
// (NULLs in every column), executable against a single engine or broadcast
// through a shard router.
func NullProbeStmts() []string {
	stmts := []string{`CREATE TABLE NullProbe (id INT, name TEXT, score FLOAT)`}
	for _, row := range []string{
		`(1, 'idle', 0.1)`,
		`(2, NULL, 0.9)`,
		`(3, 'busy', NULL)`,
		`(4, NULL, NULL)`,
		`(5, 'down', 0.5)`,
		`(6, 'idle', 0.45)`,
	} {
		stmts = append(stmts, `INSERT INTO NullProbe VALUES `+row)
	}
	return stmts
}

// RowSet renders a result as a sorted multiset of canonical row keys, the
// comparison form used by every equivalence suite: row order is not part of
// the contract unless the query has a total ORDER BY, so multiset equality is
// the strongest property that holds across execution strategies.
func RowSet(res *engine.Result) []string {
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = exec.RowKey(r)
	}
	sort.Strings(keys)
	return keys
}

// EquivCorpus assembles the full equivalence corpus: the paper's four test
// queries, the recency query generated for each against the given catalog,
// the ad-hoc shapes, and the GROUP BY corpus. The catalog must contain the
// workload schema (and NullProbe, for the queries that reference it).
func EquivCorpus(cat *storage.Catalog) ([]string, error) {
	var corpus []string
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4"} {
		sql, err := Query(name)
		if err != nil {
			return nil, err
		}
		corpus = append(corpus, sql)
		sel, err := sqlparser.ParseSelect(sql)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", name, err)
		}
		gen, err := recgen.Generate(sel, cat, recgen.Options{})
		if err != nil {
			return nil, fmt.Errorf("workload: recgen %s: %w", name, err)
		}
		if !gen.Empty {
			corpus = append(corpus, gen.SQL)
		}
	}
	corpus = append(corpus, AdHocCorpus...)
	corpus = append(corpus, GroupByCorpus...)
	return corpus, nil
}
