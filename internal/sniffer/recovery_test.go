package sniffer

import (
	"fmt"
	"testing"

	"trac/internal/crashfs"
	"trac/internal/engine"
	"trac/internal/gridsim"
)

// The fleet-level crash drill: sniffers ingest a simulated grid into a
// durable database, the process is killed at injected crashpoints across
// the ingest/checkpoint cycle, and a recovered fleet must resume at the
// exact offsets the consistent cut covered — ending byte-for-byte
// equivalent (table by table) to a database that ingested the same logs
// without ever crashing.

const recoveryTicks = 40

// buildSim replays the same seeded simulation, so every incarnation of the
// test sees identical source logs.
func buildSim(t *testing.T) *gridsim.Simulator {
	t.Helper()
	sim, err := gridsim.New(gridsim.Config{Machines: 5, Seed: 42, JobRate: 1, HeartbeatEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(recoveryTicks); err != nil {
		t.Fatal(err)
	}
	return sim
}

// referenceCounts drains the logs into a fresh in-memory database with no
// failures and returns per-table row counts: the ground truth any crashed-
// and-recovered ingestion must reproduce exactly.
func referenceCounts(t *testing.T, sim *gridsim.Simulator) map[string]int64 {
	t.Helper()
	db := engine.New()
	if err := InstallSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := NewFleet(db, sim).DrainAll(); err != nil {
		t.Fatal(err)
	}
	return tableCounts(t, db)
}

var recoveryTables = []string{ActivityTable, RoutingTable, SchedulerTable,
	RunningTable, JobLogTable, HeartbeatTable}

func tableCounts(t *testing.T, db *engine.DB) map[string]int64 {
	t.Helper()
	out := make(map[string]int64, len(recoveryTables))
	for _, tbl := range recoveryTables {
		res, err := db.Query(`SELECT COUNT(*) FROM ` + tbl)
		if err != nil {
			t.Fatalf("counting %s: %v", tbl, err)
		}
		out[tbl] = res.Rows[0][0].Int()
	}
	return out
}

// ingestUntilCrash polls the fleet in small staggered batches with a
// checkpoint partway through, stopping at the injected crash (or running to
// full drain when the crashpoint is beyond the workload).
func ingestUntilCrash(m *crashfs.Mem, sim *gridsim.Simulator) {
	db, err := engine.OpenDir("grid", engine.WithFS(m), engine.WithSyncWAL())
	if err != nil {
		return
	}
	if err := InstallSchema(db); err != nil {
		return
	}
	fleet := NewFleet(db, sim)
	for _, s := range fleet.Sniffers {
		s.BatchSize = 3 // stagger offsets: sources progress unevenly
	}
	for round := 0; ; round++ {
		if round == 4 {
			if err := db.CheckpointDir(); err != nil {
				return
			}
		}
		n, err := fleet.PollAll()
		if err != nil {
			return
		}
		if n == 0 {
			break
		}
	}
	_ = db.Close()
}

func TestFleetCrashRecoveryExactlyOnce(t *testing.T) {
	sim := buildSim(t)
	want := referenceCounts(t, sim)
	if want[JobLogTable] == 0 {
		t.Fatal("simulation produced no job events; workload is vacuous")
	}

	crashpoints := 0
	for crashAt := 1; ; crashAt += 5 {
		m := crashfs.NewMem()
		m.SetCrashAt(crashAt)
		ingestUntilCrash(m, sim)
		crashed := m.Crashed()
		m.Recover()

		// Recover the database and the fleet, then finish the drain.
		db, err := engine.OpenDir("grid", engine.WithFS(m), engine.WithSyncWAL())
		if err != nil {
			t.Fatalf("crashpoint %d: recovery failed: %v", crashAt, err)
		}
		// InstallSchema is idempotent: it finishes any partial install the
		// crash interrupted and re-applies the API-level metadata (source
		// columns, domains) that WAL replay cannot restore.
		if err := InstallSchema(db); err != nil {
			t.Fatalf("crashpoint %d: reinstalling schema: %v", crashAt, err)
		}
		fleet := NewFleet(db, sim)
		if err := fleet.RestoreAll(); err != nil {
			t.Fatalf("crashpoint %d: RestoreAll: %v", crashAt, err)
		}
		if err := fleet.DrainAll(); err != nil {
			t.Fatalf("crashpoint %d: draining after recovery: %v", crashAt, err)
		}

		// Exactly-once: the recovered-and-drained database matches the
		// never-crashed reference, table for table. A lost batch shows up as
		// a shortfall, a double-applied batch as an excess.
		got := tableCounts(t, db)
		for _, tbl := range recoveryTables {
			if got[tbl] != want[tbl] {
				t.Fatalf("crashpoint %d: %s has %d rows, reference has %d",
					crashAt, tbl, got[tbl], want[tbl])
			}
		}
		// Offsets resumed exactly: each durable resume point reached its
		// log's end.
		for _, s := range fleet.Sniffers {
			lag, err := s.Lag()
			if err != nil {
				t.Fatal(err)
			}
			if lag != 0 {
				t.Fatalf("crashpoint %d: %s lag %d after drain", crashAt, s.Source(), lag)
			}
			if rest := restoredOffset(t, db, s.Source()); rest <= 0 {
				t.Fatalf("crashpoint %d: %s durable offset %d not persisted", crashAt, s.Source(), rest)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatalf("crashpoint %d: close: %v", crashAt, err)
		}
		if !crashed {
			t.Logf("swept %d crashpoints (stride 5)", crashpoints)
			return
		}
		crashpoints++
		if crashpoints > 10000 {
			t.Fatal("sweep did not terminate")
		}
	}
}

func restoredOffset(t *testing.T, db *engine.DB, sid string) int64 {
	t.Helper()
	res, err := db.Query(fmt.Sprintf(
		`SELECT log_offset FROM %s WHERE sid = '%s'`, SnifferStateTable, sid))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		return -1
	}
	return res.Rows[0][0].Int()
}
