package sniffer

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"trac/internal/core/report"
	"trac/internal/engine"
	"trac/internal/gridsim"
)

// flakyLog fails ReadFrom with a transient error a set number of times
// before delegating; it also counts reads so tests can prove an open
// circuit stops touching the source.
type flakyLog struct {
	inner gridsim.Log

	mu       sync.Mutex
	failures int
	reads    int
}

func (l *flakyLog) Append(e gridsim.Event) error { return l.inner.Append(e) }
func (l *flakyLog) Len() (int, error)            { return l.inner.Len() }
func (l *flakyLog) Close() error                 { return l.inner.Close() }

func (l *flakyLog) ReadFrom(offset int) ([]gridsim.Event, int, error) {
	l.mu.Lock()
	l.reads++
	fail := l.failures > 0
	if fail {
		l.failures--
	}
	l.mu.Unlock()
	if fail {
		return nil, 0, fmt.Errorf("flaky: %w", gridsim.ErrTransient)
	}
	return l.inner.ReadFrom(offset)
}

func (l *flakyLog) setFailures(n int) {
	l.mu.Lock()
	l.failures = n
	l.mu.Unlock()
}

func (l *flakyLog) readCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reads
}

// fastTune makes a sniffer's robustness machinery run at test speed:
// no real sleeping, tight backoff, and an optionally tiny breaker.
func fastTune(s *Sniffer, breaker *Breaker) {
	s.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	s.sleep = func(time.Duration) {}
	if breaker != nil {
		s.breaker = breaker
	}
}

func heartbeatLog(t *testing.T, n int) *gridsim.MemoryLog {
	t.Helper()
	l := gridsim.NewMemoryLog()
	t0 := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		if err := l.Append(gridsim.Event{Time: t0.Add(time.Duration(i) * time.Second),
			Machine: "m1", Type: gridsim.HeartbeatEvent}); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func countRows(t *testing.T, db *engine.DB, sql string) int64 {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res.Rows[0][0].Int()
}

func TestPollRetriesTransientReadErrors(t *testing.T) {
	db := newDB(t)
	fl := &flakyLog{inner: heartbeatLog(t, 3), failures: 2}
	s := New(db, "m1", fl)
	var slept []time.Duration
	s.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0.2}
	s.sleep = func(d time.Duration) { slept = append(slept, d) }

	n, err := s.Poll()
	if err != nil || n != 3 {
		t.Fatalf("Poll = %d, %v", n, err)
	}
	h := s.Health()
	if h.Retries != 2 || len(slept) != 2 {
		t.Errorf("retries = %d, sleeps = %v", h.Retries, slept)
	}
	// Backoff grows (jitter is ±20%, so the second delay always exceeds the
	// first's lower bound times the multiplier's slack).
	if len(slept) == 2 && slept[1] <= slept[0]/2 {
		t.Errorf("backoff did not grow: %v", slept)
	}
	if h.Status != StatusOK {
		t.Errorf("status = %s after recovered poll", h.Status)
	}
}

func TestPollGivesUpAfterMaxAttempts(t *testing.T) {
	db := newDB(t)
	fl := &flakyLog{inner: heartbeatLog(t, 3), failures: 100}
	s := New(db, "m1", fl)
	fastTune(s, nil)
	s.Retry.MaxAttempts = 3

	n, err := s.Poll()
	if err == nil || n != 0 {
		t.Fatalf("Poll = %d, %v; want failure", n, err)
	}
	if !errors.Is(err, gridsim.ErrTransient) {
		t.Errorf("cause lost from error chain: %v", err)
	}
	if fl.readCount() != 3 {
		t.Errorf("reads = %d, want 3 attempts", fl.readCount())
	}
	if h := s.Health(); h.Status != StatusRetrying || h.LastError == "" {
		t.Errorf("health = %+v", h)
	}
}

func TestPermanentErrorsSkipRetry(t *testing.T) {
	db := newDB(t)
	l := gridsim.NewMemoryLog()
	l.Append(gridsim.Event{Time: time.Now().UTC(), Machine: "other", Type: gridsim.HeartbeatEvent})
	fl := &flakyLog{inner: l}
	s := New(db, "m1", fl)
	fastTune(s, nil)

	if _, err := s.Poll(); err == nil {
		t.Fatal("foreign event accepted")
	}
	if fl.readCount() != 1 {
		t.Errorf("semantic failure was retried: %d reads", fl.readCount())
	}
}

func TestBreakerQuarantinesFailingSource(t *testing.T) {
	db := newDB(t)
	fl := &flakyLog{inner: heartbeatLog(t, 4), failures: 1 << 30}
	s := New(db, "m1", fl)
	now := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	br := NewBreaker(3, time.Minute)
	br.now = func() time.Time { return now }
	fastTune(s, br)
	s.Retry.MaxAttempts = 1

	for i := 0; i < 3; i++ {
		if _, err := s.Poll(); err == nil {
			t.Fatal("poll succeeded on a dead source")
		}
	}
	if br.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold failures", br.State())
	}
	if h := s.Health(); h.Status != StatusOpenCircuit || h.Trips != 1 {
		t.Errorf("health = %+v", h)
	}

	// Quarantined: polls fail fast without touching the source.
	reads := fl.readCount()
	if _, err := s.Poll(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if fl.readCount() != reads {
		t.Error("open circuit still read the source")
	}

	// Source recovers; after the cooldown one probe closes the circuit and
	// ingestion resumes.
	fl.setFailures(0)
	now = now.Add(time.Minute)
	n, err := s.Poll()
	if err != nil || n != 4 {
		t.Fatalf("recovery probe = %d, %v", n, err)
	}
	if br.State() != BreakerClosed {
		t.Errorf("state = %v after successful probe", br.State())
	}
	if h := s.Health(); h.Status != StatusOK {
		t.Errorf("status = %s after recovery", h.Status)
	}
}

func TestPollAllAggregatesErrorsAndCounts(t *testing.T) {
	db := newDB(t)
	mkLog := func(machine string, n int) *gridsim.MemoryLog {
		l := gridsim.NewMemoryLog()
		t0 := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
		for i := 0; i < n; i++ {
			l.Append(gridsim.Event{Time: t0.Add(time.Duration(i) * time.Second),
				Machine: machine, Type: gridsim.HeartbeatEvent})
		}
		return l
	}
	good := New(db, "mgood", mkLog("mgood", 5))
	bad1 := New(db, "mbad1", &flakyLog{inner: mkLog("mbad1", 1), failures: 1 << 30})
	bad2 := New(db, "mbad2", &flakyLog{inner: mkLog("mbad2", 1), failures: 1 << 30})
	for _, s := range []*Sniffer{good, bad1, bad2} {
		fastTune(s, nil)
		s.Retry.MaxAttempts = 1
	}
	f := &Fleet{Sniffers: []*Sniffer{bad1, good, bad2}}

	total, err := f.PollAll()
	if total != 5 {
		t.Errorf("total = %d, want the healthy source's 5 events despite failures", total)
	}
	if err == nil {
		t.Fatal("errors were swallowed")
	}
	for _, want := range []string{"mbad1", "mbad2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %s: %v", want, err)
		}
	}
}

// TestCommitFailureDoesNotSkipOrDuplicate is the regression test for the
// commit-path state machine: whatever way Commit fails, the next poll must
// apply every event exactly once and advance the heartbeat exactly once.
func TestCommitFailureDoesNotSkipOrDuplicate(t *testing.T) {
	t.Run("failure before the transaction lands", func(t *testing.T) {
		db := newDB(t)
		s := New(db, "m1", heartbeatLog(t, 5))
		fastTune(s, nil)
		s.commitFn = func(b *engine.Batch) error {
			b.Abort()
			return errors.New("injected commit failure")
		}
		if _, err := s.Poll(); err == nil {
			t.Fatal("injected commit failure not surfaced")
		}
		// Nothing landed and nothing was skipped.
		if got := countRows(t, db, `SELECT COUNT(*) FROM Heartbeat`); got != 0 {
			t.Fatalf("aborted batch left %d heartbeat rows", got)
		}
		if h := s.Health(); h.Offset != 0 || h.Applied != 0 {
			t.Fatalf("state advanced past an aborted commit: %+v", h)
		}
		s.commitFn = nil
		n, err := s.Poll()
		if err != nil || n != 5 {
			t.Fatalf("retry poll = %d, %v", n, err)
		}
		res, _ := db.Query(`SELECT recency FROM Heartbeat WHERE sid = 'm1'`)
		if res.Rows[0][0].String() != "2006-03-15 12:00:04" {
			t.Errorf("recency = %v", res.Rows[0][0])
		}
	})

	t.Run("WAL failure after the transaction lands", func(t *testing.T) {
		db := newDB(t)
		s := New(db, "m1", heartbeatLog(t, 5))
		fastTune(s, nil)
		s.commitFn = func(b *engine.Batch) error {
			if err := b.Commit(); err != nil {
				return err
			}
			return fmt.Errorf("%w: injected", engine.ErrWALAppend)
		}
		if _, err := s.Poll(); err == nil {
			t.Fatal("injected WAL failure not surfaced")
		}
		// The batch IS visible; the sniffer must have resynced instead of
		// planning to re-apply.
		if got := countRows(t, db, `SELECT COUNT(*) FROM Heartbeat`); got != 1 {
			t.Fatalf("heartbeat rows = %d", got)
		}
		if h := s.Health(); h.Offset != 5 || h.Applied != 5 {
			t.Fatalf("state not resynced after post-commit failure: %+v", h)
		}
		s.commitFn = nil
		n, err := s.Poll()
		if err != nil || n != 0 {
			t.Fatalf("second poll = %d, %v; want nothing to re-apply", n, err)
		}
		if got := countRows(t, db, `SELECT COUNT(*) FROM SnifferState WHERE log_offset = 5`); got != 1 {
			t.Errorf("durable offset rows = %d", got)
		}
	})

	t.Run("unknown failure resyncs from durable state", func(t *testing.T) {
		db := newDB(t)
		s := New(db, "m1", heartbeatLog(t, 5))
		fastTune(s, nil)
		// Pathological driver: the commit lands but reports an untyped
		// error. Durable state is the ground truth that saves us.
		s.commitFn = func(b *engine.Batch) error {
			if err := b.Commit(); err != nil {
				return err
			}
			return errors.New("connection reset")
		}
		if _, err := s.Poll(); err == nil {
			t.Fatal("injected failure not surfaced")
		}
		if h := s.Health(); h.Offset != 5 {
			t.Fatalf("durable resync missed: %+v", h)
		}
		s.commitFn = nil
		if n, err := s.Poll(); err != nil || n != 0 {
			t.Fatalf("second poll = %d, %v", n, err)
		}
	})
}

func TestDurableOffsetsSurviveRestart(t *testing.T) {
	db := newDB(t)
	log := gridsim.NewMemoryLog()
	t0 := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 9; i++ {
		typ := gridsim.HeartbeatEvent
		e := gridsim.Event{Time: t0.Add(time.Duration(i) * time.Second), Machine: "m1", Type: typ}
		if i%3 == 0 {
			e.Type = gridsim.SubmitEvent
			e.JobID = fmt.Sprintf("j%d", i)
			e.User = "u"
		}
		log.Append(e)
	}

	s1 := New(db, "m1", log)
	s1.BatchSize = 2
	for i := 0; i < 3; i++ { // applies 6 of 9
		if _, err := s1.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	// "Crash": s1's in-memory state is abandoned. A fresh process-level
	// sniffer over the same DB must resume exactly where the committed
	// batches ended.
	s2 := New(db, "m1", log)
	if err := s2.Restore(); err != nil {
		t.Fatal(err)
	}
	if h := s2.Health(); h.Offset != 6 || h.Applied != 6 {
		t.Fatalf("restored state = %+v, want offset 6", h)
	}
	n, err := s2.Poll()
	if err != nil || n != 3 {
		t.Fatalf("post-restart poll = %d, %v", n, err)
	}
	// Exactly once: three submit events → exactly three S rows.
	if got := countRows(t, db, `SELECT COUNT(*) FROM S`); got != 3 {
		t.Errorf("S rows = %d, want 3", got)
	}
	if got := countRows(t, db, `SELECT COUNT(*) FROM JobLog`); got != 3 {
		t.Errorf("JobLog rows = %d, want 3", got)
	}
	res, _ := db.Query(`SELECT recency FROM Heartbeat WHERE sid = 'm1'`)
	if res.Rows[0][0].String() != "2006-03-15 12:00:08" {
		t.Errorf("recency = %v", res.Rows[0][0])
	}
	if got := countRows(t, db, `SELECT log_offset FROM SnifferState WHERE sid = 'm1'`); got != 9 {
		t.Errorf("durable offset = %d, want 9", got)
	}
}

func TestDedupDropsInBatchDuplicates(t *testing.T) {
	db := newDB(t)
	inner := gridsim.NewMemoryLog()
	t0 := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		inner.Append(gridsim.Event{Time: t0.Add(time.Duration(i) * time.Second),
			Machine: "m1", Type: gridsim.SubmitEvent, JobID: fmt.Sprintf("j%d", i), User: "u"})
	}
	fl := gridsim.NewFaultyLog(inner, gridsim.Faults{Duplicate: 1, Seed: 9})
	s := New(db, "m1", fl)
	fastTune(s, nil)

	n, err := s.Poll()
	if err != nil || n != 6 {
		t.Fatalf("Poll = %d, %v", n, err)
	}
	if got := countRows(t, db, `SELECT COUNT(*) FROM S`); got != 6 {
		t.Errorf("S rows = %d: duplicate slipped through", got)
	}
	if h := s.Health(); h.DuplicatesDropped != 1 {
		t.Errorf("DuplicatesDropped = %d, want 1", h.DuplicatesDropped)
	}
}

// TestQuarantinedSourceStillReported proves the degraded-source contract:
// a source quarantined by its breaker keeps its Heartbeat row, so recency
// reports show it with its last-known recency instead of silently dropping
// it.
func TestQuarantinedSourceStillReported(t *testing.T) {
	db := newDB(t)
	var faulty []*gridsim.FaultyLog
	cfg := gridsim.Config{Machines: 3, Schedulers: 1, Seed: 13, JobRate: 1, HeartbeatEvery: 2,
		NewLog: func(machine string) (gridsim.Log, error) {
			fl := gridsim.NewFaultyLog(gridsim.NewMemoryLog(), gridsim.Faults{})
			faulty = append(faulty, fl)
			return fl, nil
		}}
	sim, err := gridsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(db, sim)
	for _, s := range fleet.Sniffers {
		fastTune(s, NewBreaker(1, time.Hour))
		s.Retry.MaxAttempts = 1
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := fleet.DrainAll(); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT recency FROM Heartbeat WHERE sid = 'Tao3'`)
	lastKnown := res.Rows[0][0].Time()

	// Tao3's log starts failing hard; the grid keeps running.
	faulty[2].SetFaults(gridsim.Faults{ReadError: 1, Seed: 5})
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.PollAll(); err == nil {
		t.Fatal("expected Tao3's failure to surface")
	}
	if st := fleet.Get("Tao3").Health().Status; st != StatusOpenCircuit {
		t.Fatalf("Tao3 status = %s, want open-circuit", st)
	}
	// The healthy majority kept loading.
	if _, err := fleet.PollAll(); !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("quarantined poll error = %v", err)
	}

	sess := db.NewSession()
	defer sess.Close()
	rep, err := report.Run(sess, `SELECT mach_id FROM Activity`, report.Config{SkipTempTables: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sr := range append(append([]report.SourceRecency{}, rep.Normal...), rep.Exceptional...) {
		if sr.Sid == "Tao3" {
			found = true
			if !sr.Recency.Equal(lastKnown) {
				t.Errorf("Tao3 recency = %v, want last-known %v", sr.Recency, lastKnown)
			}
		}
	}
	if !found {
		t.Error("quarantined source vanished from the recency report")
	}
}

// TestConcurrentPollPauseLagRace exercises the sniffer's locking under
// simultaneous polling, pause/resume flips, lag queries, and health
// snapshots; run it under -race (make chaos does).
func TestConcurrentPollPauseLagRace(t *testing.T) {
	db := newDB(t)
	sim, err := gridsim.New(gridsim.Config{Machines: 5, Schedulers: 2, Seed: 17, JobRate: 2, HeartbeatEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(db, sim)
	for _, s := range fleet.Sniffers {
		fastTune(s, nil)
		s.BatchSize = 4
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the grid keeps logging while everything else runs
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if err := sim.Tick(); err != nil {
				t.Error(err)
				break
			}
		}
		close(done)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				fleet.PollAll()
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-done:
				return
			default:
				s := fleet.Sniffers[rng.Intn(len(fleet.Sniffers))]
				if rng.Intn(2) == 0 {
					s.Pause()
				} else {
					s.Resume()
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				for _, s := range fleet.Sniffers {
					s.Lag()
				}
				fleet.Health()
			}
		}
	}()
	wg.Wait()

	for _, s := range fleet.Sniffers {
		s.Resume()
	}
	if err := fleet.DrainAll(); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, db, `SELECT COUNT(*) FROM Heartbeat`); got != 5 {
		t.Errorf("heartbeats = %d", got)
	}
}
