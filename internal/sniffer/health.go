package sniffer

import "time"

// Status is a data source's ingestion health as seen by its sniffer.
type Status string

// Source statuses. A source is "ok" when its last poll succeeded,
// "retrying" when the last poll failed but the breaker is still closed,
// "open-circuit" while quarantined, "half-open" while a recovery probe is
// in flight, "paused" when loading is administratively stopped, and
// "stale" when it polls fine but its recency lags the fleet (set by
// Fleet.Health when StaleAfter is configured).
const (
	StatusOK          Status = "ok"
	StatusRetrying    Status = "retrying"
	StatusOpenCircuit Status = "open-circuit"
	StatusHalfOpen    Status = "half-open"
	StatusPaused      Status = "paused"
	StatusStale       Status = "stale"
)

// Health is a point-in-time snapshot of one sniffer's state and counters,
// the per-source surface the fleet and the shell's \sources command expose.
type Health struct {
	Source  string
	Status  Status
	Offset  int
	Applied int
	// Retries counts read retries across the sniffer's lifetime.
	Retries int
	// Trips counts circuit-breaker openings.
	Trips int
	// DuplicatesDropped counts records the sniffer discarded as in-batch
	// duplicates (exactly-once accounting).
	DuplicatesDropped int
	// LastRecency is the most recent event timestamp loaded from the
	// source (its Heartbeat recency).
	LastRecency time.Time
	// LastError is the last poll's error text ("" after a clean poll).
	LastError string
}

// Health snapshots the sniffer's status and counters.
func (s *Sniffer) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Source:            s.source,
		Offset:            s.offset,
		Applied:           s.applied,
		Retries:           s.retries,
		Trips:             s.breaker.Trips(),
		DuplicatesDropped: s.dupsDropped,
		LastRecency:       s.lastTS,
	}
	if s.lastErr != nil {
		h.LastError = s.lastErr.Error()
	}
	switch {
	case s.paused:
		h.Status = StatusPaused
	case s.breaker.State() == BreakerOpen:
		h.Status = StatusOpenCircuit
	case s.breaker.State() == BreakerHalfOpen:
		h.Status = StatusHalfOpen
	case s.lastErr != nil:
		h.Status = StatusRetrying
	default:
		h.Status = StatusOK
	}
	return h
}

// Health reports every sniffer's health. When the fleet's StaleAfter is set,
// an otherwise-ok source whose recency lags the fleet's freshest source by
// more than that duration is downgraded to StatusStale — the quiet
// degradation mode that never produces an error.
func (f *Fleet) Health() []Health {
	out := make([]Health, len(f.Sniffers))
	var maxRec time.Time
	for i, s := range f.Sniffers {
		out[i] = s.Health()
		if out[i].LastRecency.After(maxRec) {
			maxRec = out[i].LastRecency
		}
	}
	if f.StaleAfter > 0 && !maxRec.IsZero() {
		for i := range out {
			if out[i].Status == StatusOK && maxRec.Sub(out[i].LastRecency) > f.StaleAfter {
				out[i].Status = StatusStale
			}
		}
	}
	return out
}
