// Package sniffer implements the monitoring-side loaders of the paper: one
// sniffer per data source tails that source's event log, transforms the
// records into relational updates, applies them to the central database in
// atomic batches, and maintains the source's Heartbeat recency timestamp.
//
// Sniffers progress independently and at different rates — that asymmetry
// is precisely what creates the recency/consistency problem TRAC reports
// on, so the package exposes per-sniffer lag and pause controls for
// experiments and failure injection.
package sniffer

import (
	"trac/internal/engine"
	"trac/internal/types"
)

// Schema names used by the monitoring database. They follow the paper's
// running examples (§3.3, §4.1, §4.2).
const (
	ActivityTable  = "Activity"
	RoutingTable   = "Routing"
	SchedulerTable = "S"
	RunningTable   = "R"
	JobLogTable    = "JobLog"
	HeartbeatTable = "Heartbeat"
	// SnifferStateTable holds each sniffer's durable resume point: the log
	// offset it has applied through, committed in the same transaction as
	// the events themselves (exactly-once resume after a crash).
	SnifferStateTable = "SnifferState"
)

// InstallSchema creates the monitoring tables, marks their data source
// columns, sets the finite domain on Activity.value, and builds B-tree
// indexes on every source column (as the paper's evaluation does).
//
// It is idempotent: tables that already exist are left alone and duplicate
// index builds are no-ops, so a deployment that crashed partway through the
// install (or recovered an older subset from its WAL) can simply call it
// again to finish the job.
func InstallSchema(db *engine.DB) error {
	tables := []struct{ name, ddl string }{
		{ActivityTable, `CREATE TABLE Activity (mach_id TEXT, value TEXT, event_time TIMESTAMP)`},
		{RoutingTable, `CREATE TABLE Routing (mach_id TEXT, neighbor TEXT, event_time TIMESTAMP)`},
		{SchedulerTable, `CREATE TABLE S (schedMachineId TEXT, jobId TEXT, remoteMachineId TEXT, job_user TEXT)`},
		{RunningTable, `CREATE TABLE R (runningMachineId TEXT, jobId TEXT)`},
		{JobLogTable, `CREATE TABLE JobLog (mach_id TEXT, job_id TEXT, event TEXT, event_time TIMESTAMP)`},
		{HeartbeatTable, `CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`},
		{SnifferStateTable, `CREATE TABLE SnifferState (sid TEXT PRIMARY KEY, log_offset BIGINT, applied BIGINT, last_ts TIMESTAMP)`},
	}
	for _, tbl := range tables {
		if _, err := db.Catalog().Get(tbl.name); err == nil {
			continue
		}
		if _, err := db.Exec(tbl.ddl); err != nil {
			return err
		}
	}
	indexes := []string{
		`CREATE INDEX idx_activity_mach ON Activity (mach_id)`,
		`CREATE INDEX idx_routing_mach ON Routing (mach_id)`,
		`CREATE INDEX idx_s_sched ON S (schedMachineId)`,
		`CREATE INDEX idx_s_job ON S (jobId)`,
		`CREATE INDEX idx_r_run ON R (runningMachineId)`,
		`CREATE INDEX idx_r_job ON R (jobId)`,
		`CREATE INDEX idx_joblog_mach ON JobLog (mach_id)`,
	}
	for _, sql := range indexes {
		if _, err := db.Exec(sql); err != nil {
			return err
		}
	}
	return InstallMetadata(db)
}

// InstallMetadata marks the data source columns and finite domains on the
// monitoring tables. It is idempotent and separate from InstallSchema
// because this metadata is API-level, not SQL: a database recovered from a
// WAL (which replays SQL only) re-applies it with this call.
func InstallMetadata(db *engine.DB) error {
	sourceCols := map[string]string{
		ActivityTable:  "mach_id",
		RoutingTable:   "mach_id",
		SchedulerTable: "schedMachineId",
		RunningTable:   "runningMachineId",
		JobLogTable:    "mach_id",
	}
	for table, col := range sourceCols {
		tbl, err := db.Catalog().Get(table)
		if err != nil {
			return err
		}
		if err := tbl.Schema.SetSourceColumn(col); err != nil {
			return err
		}
	}
	// Finite domains where the paper's examples rely on them.
	act, err := db.Catalog().Get(ActivityTable)
	if err != nil {
		return err
	}
	act.Schema.Columns[1].Domain = types.FiniteStringDomain("busy", "idle")
	jl, err := db.Catalog().Get(JobLogTable)
	if err != nil {
		return err
	}
	jl.Schema.Columns[2].Domain = types.FiniteStringDomain("finish", "route", "start", "submit")
	// Source columns and domains change which recency plans are valid;
	// invalidate anything compiled before the metadata landed.
	db.Catalog().BumpVersion()
	return nil
}

// RegisterSource ensures a Heartbeat row exists for a source, with a zero
// recency until its first report ("every contributing data source in a
// system has an entry in the Heartbeat table").
func RegisterSource(db *engine.DB, sid string, epoch types.Value) error {
	b := db.BeginBatch()
	defer b.Abort()
	n, err := b.Exec(`UPDATE Heartbeat SET sid = ` + types.NewString(sid).SQL() +
		` WHERE sid = ` + types.NewString(sid).SQL())
	if err != nil {
		return err
	}
	if n == 0 {
		if _, err := b.Exec(`INSERT INTO Heartbeat (sid, recency) VALUES (` +
			types.NewString(sid).SQL() + `, ` + epoch.SQL() + `)`); err != nil {
			return err
		}
	}
	return b.Commit()
}
