package sniffer

import (
	"os"
	"sort"
	"testing"
	"time"

	"trac/internal/engine"
	"trac/internal/gridsim"
)

// dumpTables renders every ingestion-visible table as a sorted list of
// rows, so two databases can be compared for exact equality.
func dumpTables(t *testing.T, db *engine.DB) []string {
	t.Helper()
	var out []string
	for _, table := range []string{"Activity", "Routing", "S", "R", "JobLog", "Heartbeat", SnifferStateTable} {
		res, err := db.Query(`SELECT * FROM ` + table)
		if err != nil {
			t.Fatalf("dump %s: %v", table, err)
		}
		for _, row := range res.Rows {
			line := table
			for _, v := range row {
				line += " | " + v.SQL()
			}
			out = append(out, line)
		}
	}
	sort.Strings(out)
	return out
}

func chaosFaults() gridsim.Faults {
	f := gridsim.Faults{ReadError: 0.15, Timeout: 0.05, TimeoutDelay: 50 * time.Microsecond,
		ShortRead: 0.2, Duplicate: 0.15}
	if os.Getenv("TRAC_CHAOS") != "" {
		f = gridsim.Faults{ReadError: 0.3, Timeout: 0.1, TimeoutDelay: 100 * time.Microsecond,
			ShortRead: 0.3, Duplicate: 0.3}
	}
	return f
}

func chaosTune(f *Fleet) {
	f.DrainStallLimit = 500
	for _, s := range f.Sniffers {
		s.Retry = RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond}
		s.sleep = func(time.Duration) {}
		s.breaker = NewBreaker(8, 2*time.Millisecond)
	}
}

// TestChaosDrainExactlyOnce is the acceptance test for fault-tolerant
// ingestion: every source's log injects transient read errors, timeouts,
// short reads, and duplicated records, one sniffer is "crashed" and
// restarted mid-stream from its durable offset, and the drained database
// must still be byte-for-byte identical to a fault-free reference run —
// zero lost events, zero duplicated events.
func TestChaosDrainExactlyOnce(t *testing.T) {
	simCfg := gridsim.Config{Machines: 6, Schedulers: 2, Seed: 77, JobRate: 1.2, HeartbeatEvery: 3}

	// Reference: same simulated grid, no faults, plain drain.
	refDB := newDB(t)
	refSim, err := gridsim.New(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	refFleet := NewFleet(refDB, refSim)
	if err := refSim.Run(60); err != nil {
		t.Fatal(err)
	}
	if err := refFleet.DrainAll(); err != nil {
		t.Fatal(err)
	}
	want := dumpTables(t, refDB)
	if len(want) == 0 {
		t.Fatal("reference run produced no rows")
	}

	// Chaos: identical grid, every log wrapped in a FaultyLog.
	var faulty []*gridsim.FaultyLog
	chaosCfg := simCfg
	chaosCfg.NewLog = func(machine string) (gridsim.Log, error) {
		f := chaosFaults()
		f.Seed = int64(1000 + len(faulty)) // distinct per source, deterministic across runs
		fl := gridsim.NewFaultyLog(gridsim.NewMemoryLog(), f)
		faulty = append(faulty, fl)
		return fl, nil
	}
	db := newDB(t)
	sim, err := gridsim.New(chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(db, sim)
	chaosTune(fleet)

	// First half of the stream, partially drained under faults.
	if err := sim.Run(30); err != nil {
		t.Fatal(err)
	}
	if err := fleet.DrainAll(); err != nil {
		t.Fatalf("mid-stream drain: %v", err)
	}

	// Crash Tao1's sniffer: its in-memory offset is lost. A brand-new
	// sniffer over the same DB must resume from the durable offset.
	m0 := sim.Machines()[0]
	crashed := fleet.Sniffers[0].Health() // counters die with the process
	fleet.Sniffers[0] = New(db, m0.Name, m0.Log)
	chaosTune(fleet)

	// Second half, then the final drain.
	if err := sim.Run(30); err != nil {
		t.Fatal(err)
	}
	if err := fleet.DrainAll(); err != nil {
		t.Fatalf("final drain: %v", err)
	}

	got := dumpTables(t, db)
	if len(got) != len(want) {
		t.Fatalf("chaos run has %d rows, reference has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs:\nchaos: %s\nref:   %s", i, got[i], want[i])
		}
	}

	// Prove the run actually exercised the fault paths.
	var st gridsim.FaultStats
	for _, fl := range faulty {
		s := fl.Stats()
		st.ReadErrors += s.ReadErrors
		st.Timeouts += s.Timeouts
		st.ShortReads += s.ShortReads
		st.Duplicates += s.Duplicates
	}
	if st.Total() == 0 {
		t.Fatal("chaos run injected zero faults; the test proved nothing")
	}
	t.Logf("injected faults: %+v", st)
	retries, dups := crashed.Retries, crashed.DuplicatesDropped
	for _, h := range fleet.Health() {
		retries += h.Retries
		dups += h.DuplicatesDropped
	}
	t.Logf("fleet absorbed: retries=%d duplicates_dropped=%d", retries, dups)
	if st.Duplicates > 0 && dups == 0 {
		t.Error("duplicates were injected but none were dropped")
	}
}
