package sniffer

import (
	"testing"
	"time"
)

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.FailureThreshold != 5 || b.Cooldown != 2*time.Second {
		t.Errorf("defaults = %d, %v", b.FailureThreshold, b.Cooldown)
	}
	if b.State() != BreakerClosed || !b.Allow() {
		t.Error("new breaker must be closed and allowing")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	b := NewBreaker(3, time.Minute)
	b.now = func() time.Time { return now }

	// Failures below the threshold keep it closed.
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("breaker tripped early")
	}
	// A success resets the consecutive count.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset failure count")
	}
	// Third consecutive failure trips it.
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state = %v, trips = %d", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a poll before cooldown")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Failed probe re-opens immediately.
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state = %v, trips = %d", b.State(), b.Trips())
	}

	// Successful probe closes it.
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
