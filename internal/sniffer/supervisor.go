package sniffer

import (
	"sync"
	"sync/atomic"
	"time"
)

// SupervisorConfig tunes the continuous polling loops.
type SupervisorConfig struct {
	// Interval is the pause between poll rounds per source (default 50ms).
	Interval time.Duration
	// PollTimeout is the per-poll watchdog: a poll that exceeds it is
	// counted as timed out and the loop waits it out instead of stacking a
	// second poll behind it (default 5s).
	PollTimeout time.Duration
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.PollTimeout <= 0 {
		c.PollTimeout = 5 * time.Second
	}
	return c
}

// Supervisor runs one continuous polling loop per sniffer. Loops are fully
// independent: a source that fails, times out, or trips its breaker never
// stops the rest of the fleet — it just keeps degrading in Health() until
// it recovers. Poll errors are absorbed (the per-sniffer breaker and the
// health surface carry them); the supervisor's only job is to keep polling.
type Supervisor struct {
	fleet *Fleet
	cfg   SupervisorConfig

	timeouts atomic.Int64

	mu      sync.Mutex
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewSupervisor builds a supervisor over a fleet.
func NewSupervisor(fleet *Fleet, cfg SupervisorConfig) *Supervisor {
	return &Supervisor{fleet: fleet, cfg: cfg.withDefaults()}
}

// Start launches one polling goroutine per sniffer. Starting twice is a
// no-op.
func (sv *Supervisor) Start() {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.started {
		return
	}
	sv.started = true
	sv.stop = make(chan struct{})
	for _, s := range sv.fleet.Sniffers {
		sv.wg.Add(1)
		go sv.run(s)
	}
}

// Stop halts every polling loop and waits for them to exit. A loop stuck
// inside a hung poll exits as soon as its watchdog fires; the hung Poll
// call itself is left to finish on its own (it holds only that sniffer's
// lock).
func (sv *Supervisor) Stop() {
	sv.mu.Lock()
	if !sv.started {
		sv.mu.Unlock()
		return
	}
	sv.started = false
	close(sv.stop)
	sv.mu.Unlock()
	sv.wg.Wait()
}

// Timeouts returns how many polls exceeded the per-poll watchdog.
func (sv *Supervisor) Timeouts() int { return int(sv.timeouts.Load()) }

// run is one sniffer's polling loop.
func (sv *Supervisor) run(s *Sniffer) {
	defer sv.wg.Done()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-sv.stop:
			return
		default:
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.Poll() // errors land in the sniffer's breaker + health
		}()
		timer.Reset(sv.cfg.PollTimeout)
		select {
		case <-done:
			stopTimer(timer)
		case <-timer.C:
			sv.timeouts.Add(1)
			// Wait the hung poll out (its lock serializes the source)
			// unless we are asked to stop.
			select {
			case <-done:
			case <-sv.stop:
				return
			}
		case <-sv.stop:
			stopTimer(timer)
			return
		}
		timer.Reset(sv.cfg.Interval)
		select {
		case <-sv.stop:
			stopTimer(timer)
			return
		case <-timer.C:
		}
	}
}

// stopTimer drains a timer so it can be safely reused.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}
