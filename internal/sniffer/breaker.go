package sniffer

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Circuit breaker states. Closed passes polls through; Open quarantines the
// source (polls fail fast without touching its log); HalfOpen admits a
// single probe after the cooldown to test whether the source recovered.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for health displays.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-source circuit breaker: after FailureThreshold
// consecutive failures it opens, so a persistently failing source is
// re-probed on the Cooldown cadence instead of being re-polled hot. A
// successful half-open probe closes it again; a failed probe re-opens it.
type Breaker struct {
	// FailureThreshold is the number of consecutive failures that trips the
	// breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 2s).
	Cooldown time.Duration

	// now is the clock, swappable in tests.
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	trips    int
}

// NewBreaker builds a breaker; zero threshold or cooldown select the
// defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{FailureThreshold: threshold, Cooldown: cooldown, now: time.Now}
}

// Allow reports whether a poll may proceed. When the breaker is open and the
// cooldown has elapsed, the caller becomes the half-open probe; concurrent
// callers are rejected until the probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // a probe is already in flight
	default: // open
		if b.now().Sub(b.openedAt) >= b.Cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	}
}

// Success records a successful poll: the breaker closes and the consecutive
// failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// Failure records a failed poll. A failed half-open probe re-opens the
// breaker immediately; in the closed state the breaker trips once the
// consecutive failure count reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	default:
		b.failures++
		if b.failures >= b.FailureThreshold {
			b.trip()
		}
	}
}

// trip opens the breaker; callers must hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.trips++
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
