package sniffer

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"trac/internal/engine"
	"trac/internal/gridsim"
	"trac/internal/types"
)

// ErrCircuitOpen is returned by Poll while a source is quarantined by its
// circuit breaker. The source's Heartbeat row is untouched, so recency
// reports keep showing it with its last-known recency instead of dropping
// it.
var ErrCircuitOpen = errors.New("sniffer: circuit open, source quarantined")

// Sniffer tails one data source's log and loads it into the database.
//
// It is built for the paper's failure model — the source is asynchronous
// and uncontrollable — so every poll read is retried with backoff, a
// persistently failing source trips a per-source circuit breaker, and the
// log offset is persisted into the SnifferState table inside the same
// transaction as the applied events, which makes resume after a crash
// exactly-once.
type Sniffer struct {
	db     *engine.DB
	source string
	log    gridsim.Log

	mu       sync.Mutex
	offset   int
	paused   bool
	lastTS   time.Time
	applied  int
	restored bool

	// BatchSize caps how many events one Poll applies (0 = unlimited).
	// Smaller batches make a sniffer "slower", widening the inconsistency
	// window between sources — the knob the experiments turn.
	BatchSize int
	// Retry tunes transient-read retry within one Poll (zero value =
	// defaults).
	Retry RetryPolicy

	breaker *Breaker
	rng     *rand.Rand
	sleep   func(time.Duration)

	retries     int
	dupsDropped int
	lastErr     error

	// commitFn overrides batch commit in tests to inject commit-time
	// failures (nil = Batch.Commit).
	commitFn func(*engine.Batch) error
}

// New creates a sniffer for one source.
func New(db *engine.DB, source string, log gridsim.Log) *Sniffer {
	h := fnv.New64a()
	h.Write([]byte(source))
	return &Sniffer{
		db:      db,
		source:  source,
		log:     log,
		breaker: NewBreaker(0, 0),
		rng:     rand.New(rand.NewSource(int64(h.Sum64()))),
		sleep:   time.Sleep,
	}
}

// Source returns the data source id.
func (s *Sniffer) Source() string { return s.source }

// Breaker exposes the per-source circuit breaker for tuning (threshold,
// cooldown) and inspection.
func (s *Sniffer) Breaker() *Breaker { return s.breaker }

// Applied returns the number of events loaded so far (including, after a
// restore, events applied by a previous incarnation of this sniffer).
func (s *Sniffer) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Lag returns how many log records have not yet been loaded.
func (s *Sniffer) Lag() (int, error) {
	n, err := s.log.Len()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return n - s.offset, nil
}

// Pause makes Poll a no-op: the loader side of a failure (the source may
// keep logging, but nothing reaches the database, so its recency goes
// stale).
func (s *Sniffer) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume re-enables loading.
func (s *Sniffer) Resume() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
}

// Paused reports the pause state.
func (s *Sniffer) Paused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// Restore loads the sniffer's durable offset state from the SnifferState
// table immediately. Poll does this lazily on first use, so calling Restore
// is only needed to observe the recovered offset before polling.
func (s *Sniffer) Restore() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restoreLocked()
}

// restoreLocked recovers offset/applied/lastTS from SnifferState. Missing
// table (non-durable deployments) or missing row (first run) leave the
// zero state.
func (s *Sniffer) restoreLocked() error {
	s.restored = true
	if !s.durable() {
		return nil
	}
	res, err := s.db.Query(`SELECT log_offset, applied, last_ts FROM ` + SnifferStateTable +
		` WHERE sid = ` + types.NewString(s.source).SQL())
	if err != nil {
		return fmt.Errorf("sniffer: restore %s: %w", s.source, err)
	}
	if len(res.Rows) == 0 {
		return nil
	}
	row := res.Rows[0]
	s.offset = int(row[0].Int())
	s.applied = int(row[1].Int())
	if !row[2].IsNull() {
		s.lastTS = row[2].Time()
	}
	return nil
}

// durable reports whether the SnifferState table exists (deployments that
// never installed it just lose resume-on-restart, nothing else).
func (s *Sniffer) durable() bool {
	_, err := s.db.Catalog().Get(SnifferStateTable)
	return err == nil
}

// Poll reads new log records and applies them (plus the Heartbeat advance
// and the durable offset update) in one atomic batch. It returns the number
// of events applied.
//
// Transient read failures are retried per s.Retry; a poll that still fails
// counts against the circuit breaker, and while the breaker is open Poll
// fails fast with ErrCircuitOpen.
func (s *Sniffer) Poll() (int, error) { return s.PollContext(context.Background()) }

// PollContext is Poll with cancellation: a canceled context aborts retry
// backoff waits between read attempts and returns ctx.Err(). Cancellation
// never interrupts a batch mid-commit — the atomic apply is all-or-nothing
// regardless.
func (s *Sniffer) PollContext(ctx context.Context) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.paused {
		return 0, nil
	}
	if !s.restored {
		if err := s.restoreLocked(); err != nil {
			s.lastErr = err
			return 0, err
		}
	}
	if !s.breaker.Allow() {
		err := fmt.Errorf("%w: %s", ErrCircuitOpen, s.source)
		s.lastErr = err
		return 0, err
	}
	n, err := s.pollLocked(ctx)
	if err != nil {
		s.breaker.Failure()
		s.lastErr = err
		return n, err
	}
	s.breaker.Success()
	s.lastErr = nil
	return n, nil
}

func (s *Sniffer) pollLocked(ctx context.Context) (int, error) {
	events, next, err := s.readWithRetry(ctx, s.offset)
	if err != nil {
		return 0, err
	}
	// A faulty reader can deliver a record twice within one batch. The
	// log's next-offset is authoritative for how many unique records exist,
	// so any surplus is duplication: drop adjacent repeats, exactly the
	// surplus count.
	if unique := next - s.offset; unique < len(events) {
		events = s.dropDuplicates(events, len(events)-unique)
		if len(events) != unique {
			return 0, fmt.Errorf("sniffer: %s: log delivered %d records for %d offsets",
				s.source, len(events), unique)
		}
	}
	if s.BatchSize > 0 && len(events) > s.BatchSize {
		events = events[:s.BatchSize]
		next = s.offset + s.BatchSize
	}
	if len(events) == 0 {
		return 0, nil
	}

	b := s.db.BeginBatch()
	defer b.Abort() // no-op after successful commit
	var maxTS time.Time
	for _, e := range events {
		if e.Machine != s.source {
			return 0, fmt.Errorf("sniffer: %s read foreign event from %s", s.source, e.Machine)
		}
		if err := applyEvent(b, e); err != nil {
			return 0, err
		}
		if e.Time.After(maxTS) {
			maxTS = e.Time
		}
	}
	// Maintain the recency timestamp: the most recent event reported by
	// this source (§3.1's simple protocol; heartbeat records advance it
	// even when there is nothing to report).
	newLast := s.lastTS
	if maxTS.After(newLast) {
		newLast = maxTS
		if err := upsertHeartbeat(b, s.source, maxTS); err != nil {
			return 0, err
		}
	}
	newApplied := s.applied + len(events)
	// Exactly-once resume: the offset advance commits atomically with the
	// events it covers, so a crash between commit and the in-memory update
	// below cannot double-apply on restart.
	if s.durable() {
		if err := persistState(b, s.source, next, newApplied, newLast); err != nil {
			return 0, err
		}
	}
	if err := s.commit(b); err != nil {
		// The transaction may have landed even though Commit errored (a WAL
		// append failure happens after the engine commit). Resync so the
		// next poll neither skips nor re-applies events.
		s.resyncLocked(err, next, newApplied, newLast)
		return 0, err
	}
	s.offset = next
	s.applied = newApplied
	s.lastTS = newLast
	return len(events), nil
}

// readWithRetry reads the log, retrying transient failures with jittered
// exponential backoff. The backoff wait is context-aware: cancellation cuts
// the retry loop short instead of sleeping through it.
func (s *Sniffer) readWithRetry(ctx context.Context, offset int) ([]gridsim.Event, int, error) {
	p := s.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if attempt > 0 {
			s.retries++
			if err := s.sleepCtx(ctx, p.backoff(attempt-1, s.rng)); err != nil {
				return nil, 0, err
			}
		}
		events, next, err := s.log.ReadFrom(offset)
		if err == nil {
			return events, next, nil
		}
		lastErr = err
		if !isTransient(err) {
			return nil, 0, err
		}
	}
	return nil, 0, fmt.Errorf("sniffer: %s: read failed after %d attempts: %w",
		s.source, p.MaxAttempts, lastErr)
}

// sleepCtx waits for d or for cancellation, whichever comes first. A
// context that can never be canceled takes the injected sleeper (real
// time.Sleep in production, a fake in tests), preserving the pre-context
// behaviour of Poll().
func (s *Sniffer) sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		s.sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// dropDuplicates removes up to surplus adjacent-equal records, counting
// them in the health counters.
func (s *Sniffer) dropDuplicates(events []gridsim.Event, surplus int) []gridsim.Event {
	out := make([]gridsim.Event, 0, len(events))
	for i, e := range events {
		if surplus > 0 && i > 0 && e == events[i-1] {
			surplus--
			s.dupsDropped++
			continue
		}
		out = append(out, e)
	}
	return out
}

// commit commits the batch (or runs the test-injected commit).
func (s *Sniffer) commit(b *engine.Batch) error {
	if s.commitFn != nil {
		return s.commitFn(b)
	}
	return b.Commit()
}

// resyncLocked reconciles in-memory state after a failed commit. A
// post-commit WAL failure (engine.ErrWALAppend) means the data IS visible:
// adopt the new state. Any other failure leaves the database unchanged, but
// when durable state exists we re-read it as ground truth anyway.
func (s *Sniffer) resyncLocked(cause error, next, applied int, last time.Time) {
	if errors.Is(cause, engine.ErrWALAppend) {
		s.offset = next
		s.applied = applied
		s.lastTS = last
		return
	}
	if !s.durable() {
		return
	}
	res, err := s.db.Query(`SELECT log_offset, applied, last_ts FROM ` + SnifferStateTable +
		` WHERE sid = ` + types.NewString(s.source).SQL())
	if err != nil || len(res.Rows) == 0 {
		return
	}
	row := res.Rows[0]
	if off := int(row[0].Int()); off > s.offset {
		s.offset = off
		s.applied = int(row[1].Int())
		if !row[2].IsNull() {
			s.lastTS = row[2].Time()
		}
	}
}

// persistState upserts the sniffer's durable resume point inside the batch.
func persistState(b *engine.Batch, sid string, offset, applied int, last time.Time) error {
	sidSQL := types.NewString(sid).SQL()
	lastSQL := "NULL"
	if !last.IsZero() {
		lastSQL = types.NewTime(last).SQL()
	}
	set := `log_offset = ` + types.NewInt(int64(offset)).SQL() +
		`, applied = ` + types.NewInt(int64(applied)).SQL() +
		`, last_ts = ` + lastSQL
	n, err := b.Exec(`UPDATE ` + SnifferStateTable + ` SET ` + set + ` WHERE sid = ` + sidSQL)
	if err != nil {
		return err
	}
	if n == 0 {
		_, err = b.Exec(`INSERT INTO ` + SnifferStateTable + ` (sid, log_offset, applied, last_ts) VALUES (` +
			sidSQL + `, ` + types.NewInt(int64(offset)).SQL() + `, ` +
			types.NewInt(int64(applied)).SQL() + `, ` + lastSQL + `)`)
	}
	return err
}

// applyEvent translates one log record into relational updates.
func applyEvent(b *engine.Batch, e gridsim.Event) error {
	src := types.NewString(e.Machine).SQL()
	ts := types.NewTime(e.Time).SQL()
	job := types.NewString(e.JobID).SQL()
	switch e.Type {
	case gridsim.StatusEvent:
		// Activity is current-state: replace this machine's row.
		if _, err := b.Exec(`DELETE FROM Activity WHERE mach_id = ` + src); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO Activity VALUES (` + src + `, ` +
			types.NewString(e.Value).SQL() + `, ` + ts + `)`)
		return err
	case gridsim.NeighborEvent:
		_, err := b.Exec(`INSERT INTO Routing VALUES (` + src + `, ` +
			types.NewString(e.Neighbor).SQL() + `, ` + ts + `)`)
		return err
	case gridsim.SubmitEvent:
		if _, err := b.Exec(`INSERT INTO S VALUES (` + src + `, ` + job + `, NULL, ` +
			types.NewString(e.User).SQL() + `)`); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO JobLog VALUES (` + src + `, ` + job + `, 'submit', ` + ts + `)`)
		return err
	case gridsim.RouteEvent:
		if _, err := b.Exec(`UPDATE S SET remoteMachineId = ` + types.NewString(e.Remote).SQL() +
			` WHERE schedMachineId = ` + src + ` AND jobId = ` + job); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO JobLog VALUES (` + src + `, ` + job + `, 'route', ` + ts + `)`)
		return err
	case gridsim.StartEvent:
		if _, err := b.Exec(`INSERT INTO R VALUES (` + src + `, ` + job + `)`); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO JobLog VALUES (` + src + `, ` + job + `, 'start', ` + ts + `)`)
		return err
	case gridsim.FinishEvent:
		if _, err := b.Exec(`DELETE FROM R WHERE runningMachineId = ` + src + ` AND jobId = ` + job); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO JobLog VALUES (` + src + `, ` + job + `, 'finish', ` + ts + `)`)
		return err
	case gridsim.HeartbeatEvent:
		return nil // only advances recency
	default:
		return fmt.Errorf("sniffer: unknown event type %q", e.Type)
	}
}

func upsertHeartbeat(b *engine.Batch, sid string, ts time.Time) error {
	sidSQL := types.NewString(sid).SQL()
	tsSQL := types.NewTime(ts).SQL()
	n, err := b.Exec(`UPDATE Heartbeat SET recency = ` + tsSQL + ` WHERE sid = ` + sidSQL)
	if err != nil {
		return err
	}
	if n == 0 {
		_, err = b.Exec(`INSERT INTO Heartbeat (sid, recency) VALUES (` + sidSQL + `, ` + tsSQL + `)`)
	}
	return err
}

// Fleet manages one sniffer per machine of a simulated grid.
type Fleet struct {
	Sniffers []*Sniffer
	// StaleAfter marks an otherwise-healthy source stale in Health() when
	// its recency lags the freshest source by more than this (0 disables).
	StaleAfter time.Duration
	// DrainStallLimit bounds how many consecutive zero-progress error
	// rounds DrainAll tolerates before giving up (0 = default 50).
	DrainStallLimit int
}

// NewFleet builds sniffers for every machine of the simulator.
func NewFleet(db *engine.DB, sim *gridsim.Simulator) *Fleet {
	f := &Fleet{}
	for _, m := range sim.Machines() {
		f.Sniffers = append(f.Sniffers, New(db, m.Name, m.Log))
	}
	return f
}

// PollAll polls every sniffer once, concurrently. It always returns the
// total number of events applied across the whole fleet; errors from
// individual sniffers are aggregated with errors.Join, so one failing
// source never hides the others' progress or errors.
func (f *Fleet) PollAll() (int, error) { return f.PollAllContext(context.Background()) }

// PollAllContext is PollAll with cancellation, passed through to each
// sniffer's retry backoff.
func (f *Fleet) PollAllContext(ctx context.Context) (int, error) {
	var wg sync.WaitGroup
	counts := make([]int, len(f.Sniffers))
	errs := make([]error, len(f.Sniffers))
	for i, s := range f.Sniffers {
		wg.Add(1)
		go func(i int, s *Sniffer) {
			defer wg.Done()
			counts[i], errs[i] = s.PollContext(ctx)
		}(i, s)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, errors.Join(errs...)
}

// RestoreAll loads every sniffer's durable resume point from the
// SnifferState table — the fleet half of crash recovery: after
// engine.OpenDir rebuilds the database, RestoreAll repositions each sniffer
// at the exact log offset its last committed batch covered, so ingestion
// resumes exactly-once with no events lost or re-applied.
func (f *Fleet) RestoreAll() error {
	var errs []error
	for _, s := range f.Sniffers {
		errs = append(errs, s.Restore())
	}
	return errors.Join(errs...)
}

// Get returns the sniffer for a source name, or nil.
func (f *Fleet) Get(source string) *Sniffer {
	for _, s := range f.Sniffers {
		if s.source == source {
			return s
		}
	}
	return nil
}

// DrainAll polls until the database has caught up with every log. Transient
// failures do not abort the drain: as long as some sniffer makes progress
// the fleet keeps polling, and zero-progress rounds with errors are retried
// (with a short pause, letting backoff and breaker cooldowns do their work)
// up to DrainStallLimit consecutive times before the aggregated error is
// returned.
func (f *Fleet) DrainAll() error { return f.DrainAllContext(context.Background()) }

// DrainAllContext is DrainAll with cancellation: the drain stops at the next
// round boundary (or stall pause) once ctx is canceled and returns ctx.Err().
func (f *Fleet) DrainAllContext(ctx context.Context) error {
	limit := f.DrainStallLimit
	if limit <= 0 {
		limit = 50
	}
	stalled := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := f.PollAllContext(ctx)
		if n > 0 {
			stalled = 0
			continue
		}
		if err == nil {
			return nil
		}
		stalled++
		if stalled >= limit {
			return err
		}
		// Stall pause, cut short by cancellation. With a Background context
		// this degenerates to a plain 2ms timer sleep.
		t := time.NewTimer(2 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
