package sniffer

import (
	"fmt"
	"sync"
	"time"

	"trac/internal/engine"
	"trac/internal/gridsim"
	"trac/internal/types"
)

// Sniffer tails one data source's log and loads it into the database.
type Sniffer struct {
	db     *engine.DB
	source string
	log    gridsim.Log

	mu      sync.Mutex
	offset  int
	paused  bool
	lastTS  time.Time
	applied int
	// BatchSize caps how many events one Poll applies (0 = unlimited).
	// Smaller batches make a sniffer "slower", widening the inconsistency
	// window between sources — the knob the experiments turn.
	BatchSize int
}

// New creates a sniffer for one source.
func New(db *engine.DB, source string, log gridsim.Log) *Sniffer {
	return &Sniffer{db: db, source: source, log: log}
}

// Source returns the data source id.
func (s *Sniffer) Source() string { return s.source }

// Applied returns the number of events loaded so far.
func (s *Sniffer) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Lag returns how many log records have not yet been loaded.
func (s *Sniffer) Lag() (int, error) {
	n, err := s.log.Len()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return n - s.offset, nil
}

// Pause makes Poll a no-op: the loader side of a failure (the source may
// keep logging, but nothing reaches the database, so its recency goes
// stale).
func (s *Sniffer) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume re-enables loading.
func (s *Sniffer) Resume() {
	s.mu.Lock()
	s.paused = false
	s.mu.Unlock()
}

// Paused reports the pause state.
func (s *Sniffer) Paused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// Poll reads new log records and applies them (plus the Heartbeat advance)
// in one atomic batch. It returns the number of events applied.
func (s *Sniffer) Poll() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.paused {
		return 0, nil
	}
	events, next, err := s.log.ReadFrom(s.offset)
	if err != nil {
		return 0, err
	}
	if s.BatchSize > 0 && len(events) > s.BatchSize {
		events = events[:s.BatchSize]
		next = s.offset + s.BatchSize
	}
	if len(events) == 0 {
		return 0, nil
	}

	b := s.db.BeginBatch()
	defer b.Abort() // no-op after successful commit
	var maxTS time.Time
	for _, e := range events {
		if e.Machine != s.source {
			return 0, fmt.Errorf("sniffer: %s read foreign event from %s", s.source, e.Machine)
		}
		if err := applyEvent(b, e); err != nil {
			return 0, err
		}
		if e.Time.After(maxTS) {
			maxTS = e.Time
		}
	}
	// Maintain the recency timestamp: the most recent event reported by
	// this source (§3.1's simple protocol; heartbeat records advance it
	// even when there is nothing to report).
	if maxTS.After(s.lastTS) {
		if err := upsertHeartbeat(b, s.source, maxTS); err != nil {
			return 0, err
		}
	}
	if err := b.Commit(); err != nil {
		return 0, err
	}
	if maxTS.After(s.lastTS) {
		s.lastTS = maxTS
	}
	s.offset = next
	s.applied += len(events)
	return len(events), nil
}

// applyEvent translates one log record into relational updates.
func applyEvent(b *engine.Batch, e gridsim.Event) error {
	src := types.NewString(e.Machine).SQL()
	ts := types.NewTime(e.Time).SQL()
	job := types.NewString(e.JobID).SQL()
	switch e.Type {
	case gridsim.StatusEvent:
		// Activity is current-state: replace this machine's row.
		if _, err := b.Exec(`DELETE FROM Activity WHERE mach_id = ` + src); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO Activity VALUES (` + src + `, ` +
			types.NewString(e.Value).SQL() + `, ` + ts + `)`)
		return err
	case gridsim.NeighborEvent:
		_, err := b.Exec(`INSERT INTO Routing VALUES (` + src + `, ` +
			types.NewString(e.Neighbor).SQL() + `, ` + ts + `)`)
		return err
	case gridsim.SubmitEvent:
		if _, err := b.Exec(`INSERT INTO S VALUES (` + src + `, ` + job + `, NULL, ` +
			types.NewString(e.User).SQL() + `)`); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO JobLog VALUES (` + src + `, ` + job + `, 'submit', ` + ts + `)`)
		return err
	case gridsim.RouteEvent:
		if _, err := b.Exec(`UPDATE S SET remoteMachineId = ` + types.NewString(e.Remote).SQL() +
			` WHERE schedMachineId = ` + src + ` AND jobId = ` + job); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO JobLog VALUES (` + src + `, ` + job + `, 'route', ` + ts + `)`)
		return err
	case gridsim.StartEvent:
		if _, err := b.Exec(`INSERT INTO R VALUES (` + src + `, ` + job + `)`); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO JobLog VALUES (` + src + `, ` + job + `, 'start', ` + ts + `)`)
		return err
	case gridsim.FinishEvent:
		if _, err := b.Exec(`DELETE FROM R WHERE runningMachineId = ` + src + ` AND jobId = ` + job); err != nil {
			return err
		}
		_, err := b.Exec(`INSERT INTO JobLog VALUES (` + src + `, ` + job + `, 'finish', ` + ts + `)`)
		return err
	case gridsim.HeartbeatEvent:
		return nil // only advances recency
	default:
		return fmt.Errorf("sniffer: unknown event type %q", e.Type)
	}
}

func upsertHeartbeat(b *engine.Batch, sid string, ts time.Time) error {
	sidSQL := types.NewString(sid).SQL()
	tsSQL := types.NewTime(ts).SQL()
	n, err := b.Exec(`UPDATE Heartbeat SET recency = ` + tsSQL + ` WHERE sid = ` + sidSQL)
	if err != nil {
		return err
	}
	if n == 0 {
		_, err = b.Exec(`INSERT INTO Heartbeat (sid, recency) VALUES (` + sidSQL + `, ` + tsSQL + `)`)
	}
	return err
}

// Fleet manages one sniffer per machine of a simulated grid.
type Fleet struct {
	Sniffers []*Sniffer
}

// NewFleet builds sniffers for every machine of the simulator.
func NewFleet(db *engine.DB, sim *gridsim.Simulator) *Fleet {
	f := &Fleet{}
	for _, m := range sim.Machines() {
		f.Sniffers = append(f.Sniffers, New(db, m.Name, m.Log))
	}
	return f
}

// PollAll polls every sniffer once, concurrently, and returns the total
// number of events applied.
func (f *Fleet) PollAll() (int, error) {
	var wg sync.WaitGroup
	counts := make([]int, len(f.Sniffers))
	errs := make([]error, len(f.Sniffers))
	for i, s := range f.Sniffers {
		wg.Add(1)
		go func(i int, s *Sniffer) {
			defer wg.Done()
			counts[i], errs[i] = s.Poll()
		}(i, s)
	}
	wg.Wait()
	total := 0
	for i := range counts {
		if errs[i] != nil {
			return total, errs[i]
		}
		total += counts[i]
	}
	return total, nil
}

// Get returns the sniffer for a source name, or nil.
func (f *Fleet) Get(source string) *Sniffer {
	for _, s := range f.Sniffers {
		if s.source == source {
			return s
		}
	}
	return nil
}

// DrainAll polls until no sniffer makes progress (the database has caught
// up with every log).
func (f *Fleet) DrainAll() error {
	for {
		n, err := f.PollAll()
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
	}
}
