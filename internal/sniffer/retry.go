package sniffer

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"trac/internal/gridsim"
)

// RetryPolicy governs how a sniffer retries transient source-read failures
// within one Poll: exponential backoff with jitter, capped. The zero value
// selects the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of read attempts per poll, including
	// the first (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 2ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 100ms).
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry (default 2).
	Multiplier float64
	// Jitter spreads each backoff by ±Jitter fraction (default 0.2), so a
	// fleet recovering from a shared fault does not re-poll in lockstep.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	return p
}

// backoff returns the delay before retry number retry (0-based), jittered
// with the caller's rng for deterministic tests.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(retry))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// isTransient reports whether an error is worth retrying: injected gridsim
// faults and anything that self-identifies as a timeout. Semantic errors
// (foreign events, malformed records) are permanent and go straight to the
// circuit breaker.
func isTransient(err error) bool {
	if errors.Is(err, gridsim.ErrTransient) {
		return true
	}
	var t interface{ Timeout() bool }
	return errors.As(err, &t) && t.Timeout()
}
