package sniffer

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"trac/internal/core/report"
	"trac/internal/engine"
	"trac/internal/gridsim"
	"trac/internal/types"
)

func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	if err := InstallSchema(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInstallSchema(t *testing.T) {
	db := newDB(t)
	for _, table := range []string{ActivityTable, RoutingTable, SchedulerTable, RunningTable, JobLogTable, HeartbeatTable} {
		tbl, err := db.Catalog().Get(table)
		if err != nil {
			t.Fatalf("table %s missing: %v", table, err)
		}
		if table != HeartbeatTable && tbl.Schema.SourceColumn < 0 {
			t.Errorf("table %s has no source column", table)
		}
	}
	// Installing twice is a no-op (crash recovery re-runs the install to
	// finish partial schemas and restore API-level metadata).
	if err := InstallSchema(db); err != nil {
		t.Errorf("re-install should be idempotent: %v", err)
	}
}

func TestSnifferLoadsIntroScenario(t *testing.T) {
	// The paper's introduction: job j submitted at m1, routed to and run at
	// m2. Depending on which sniffer has polled, the DB shows one of four
	// states.
	db := newDB(t)
	lm1, lm2 := gridsim.NewMemoryLog(), gridsim.NewMemoryLog()
	t0 := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	lm1.Append(gridsim.Event{Time: t0, Machine: "m1", Type: gridsim.SubmitEvent, JobID: "j", User: "u"})
	lm1.Append(gridsim.Event{Time: t0.Add(time.Second), Machine: "m1", Type: gridsim.RouteEvent, JobID: "j", Remote: "m2"})
	lm2.Append(gridsim.Event{Time: t0.Add(2 * time.Second), Machine: "m2", Type: gridsim.StartEvent, JobID: "j"})

	s1 := New(db, "m1", lm1)
	s2 := New(db, "m2", lm2)

	countRows := func(sql string) int64 {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].Int()
	}

	// State 1: nothing reported.
	if countRows(`SELECT COUNT(*) FROM S`) != 0 || countRows(`SELECT COUNT(*) FROM R`) != 0 {
		t.Fatal("state 1 wrong")
	}
	// State 3: only m2 reported.
	if _, err := s2.Poll(); err != nil {
		t.Fatal(err)
	}
	if countRows(`SELECT COUNT(*) FROM S`) != 0 || countRows(`SELECT COUNT(*) FROM R WHERE jobId = 'j'`) != 1 {
		t.Fatal("state 3 wrong: R should show j running with no S row")
	}
	// State 4: both reported.
	if _, err := s1.Poll(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT schedMachineId, remoteMachineId FROM S WHERE jobId = 'j'`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("S rows = %v, %v", res, err)
	}
	if res.Rows[0][0].Str() != "m1" || res.Rows[0][1].Str() != "m2" {
		t.Errorf("S row = %v", res.Rows[0])
	}
	// Heartbeats advanced to each source's last event.
	res, _ = db.Query(`SELECT recency FROM Heartbeat WHERE sid = 'm1'`)
	if res.Rows[0][0].String() != "2006-03-15 12:00:01" {
		t.Errorf("m1 recency = %v", res.Rows[0][0])
	}
	res, _ = db.Query(`SELECT recency FROM Heartbeat WHERE sid = 'm2'`)
	if res.Rows[0][0].String() != "2006-03-15 12:00:02" {
		t.Errorf("m2 recency = %v", res.Rows[0][0])
	}
}

func TestStatusEventsAreCurrentState(t *testing.T) {
	db := newDB(t)
	l := gridsim.NewMemoryLog()
	t0 := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	l.Append(gridsim.Event{Time: t0, Machine: "m1", Type: gridsim.StatusEvent, Value: "idle"})
	l.Append(gridsim.Event{Time: t0.Add(time.Second), Machine: "m1", Type: gridsim.StatusEvent, Value: "busy"})
	s := New(db, "m1", l)
	if _, err := s.Poll(); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT value FROM Activity WHERE mach_id = 'm1'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "busy" {
		t.Errorf("Activity rows = %v, want single busy row", res.Rows)
	}
}

func TestFinishRemovesRunningRow(t *testing.T) {
	db := newDB(t)
	l := gridsim.NewMemoryLog()
	t0 := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	l.Append(gridsim.Event{Time: t0, Machine: "m2", Type: gridsim.StartEvent, JobID: "j1"})
	l.Append(gridsim.Event{Time: t0.Add(time.Second), Machine: "m2", Type: gridsim.FinishEvent, JobID: "j1"})
	s := New(db, "m2", l)
	s.Poll()
	res, _ := db.Query(`SELECT COUNT(*) FROM R`)
	if res.Rows[0][0].Int() != 0 {
		t.Error("finished job still in R")
	}
	res, _ = db.Query(`SELECT COUNT(*) FROM JobLog WHERE job_id = 'j1'`)
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("JobLog rows = %v", res.Rows[0][0])
	}
}

func TestBatchSizeCreatesLag(t *testing.T) {
	db := newDB(t)
	l := gridsim.NewMemoryLog()
	t0 := time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		l.Append(gridsim.Event{Time: t0.Add(time.Duration(i) * time.Second),
			Machine: "m1", Type: gridsim.HeartbeatEvent})
	}
	s := New(db, "m1", l)
	s.BatchSize = 3
	n, err := s.Poll()
	if err != nil || n != 3 {
		t.Fatalf("first poll = %d, %v", n, err)
	}
	lag, _ := s.Lag()
	if lag != 7 {
		t.Errorf("lag = %d, want 7", lag)
	}
	// Recency reflects only what has been loaded.
	res, _ := db.Query(`SELECT recency FROM Heartbeat WHERE sid = 'm1'`)
	if res.Rows[0][0].String() != "2006-03-15 12:00:02" {
		t.Errorf("recency = %v", res.Rows[0][0])
	}
	for i := 0; i < 3; i++ {
		s.Poll()
	}
	if s.Applied() != 10 {
		t.Errorf("applied = %d", s.Applied())
	}
}

func TestPauseResume(t *testing.T) {
	db := newDB(t)
	l := gridsim.NewMemoryLog()
	l.Append(gridsim.Event{Time: time.Now().UTC(), Machine: "m1", Type: gridsim.HeartbeatEvent})
	s := New(db, "m1", l)
	s.Pause()
	if !s.Paused() {
		t.Error("Paused() false after Pause")
	}
	if n, _ := s.Poll(); n != 0 {
		t.Error("paused sniffer applied events")
	}
	s.Resume()
	if n, _ := s.Poll(); n != 1 {
		t.Error("resumed sniffer did not apply")
	}
}

func TestForeignEventRejected(t *testing.T) {
	db := newDB(t)
	l := gridsim.NewMemoryLog()
	l.Append(gridsim.Event{Time: time.Now().UTC(), Machine: "other", Type: gridsim.HeartbeatEvent})
	s := New(db, "m1", l)
	if _, err := s.Poll(); err == nil {
		t.Error("foreign event should be rejected")
	}
}

func TestFleetEndToEnd(t *testing.T) {
	// Simulate a small grid, sniff everything, and ask a monitoring query
	// with a recency report.
	db := newDB(t)
	sim, err := gridsim.New(gridsim.Config{Machines: 6, Seed: 11, JobRate: 1, HeartbeatEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(db, sim)
	if err := sim.Run(40); err != nil {
		t.Fatal(err)
	}
	if err := fleet.DrainAll(); err != nil {
		t.Fatal(err)
	}

	// Every machine must have a heartbeat.
	res, err := db.Query(`SELECT COUNT(*) FROM Heartbeat`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("heartbeats = %v", res.Rows[0][0])
	}

	// The per-source invariant: JobLog rows from a source never exceed its
	// recency.
	res, err = db.Query(`SELECT mach_id, event_time FROM JobLog`)
	if err != nil {
		t.Fatal(err)
	}
	hb := map[string]time.Time{}
	hres, _ := db.Query(`SELECT sid, recency FROM Heartbeat`)
	for _, row := range hres.Rows {
		hb[row[0].Str()] = row[1].Time()
	}
	for _, row := range res.Rows {
		if row[1].Time().After(hb[row[0].Str()]) {
			t.Fatalf("event newer than source recency: %v > %v", row[1], hb[row[0].Str()])
		}
	}

	// Recency report over a §4.2-style query.
	sess := db.NewSession()
	defer sess.Close()
	rep, err := report.Run(sess, `SELECT R.runningMachineId FROM R WHERE R.jobId = 'j1'`, report.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if total := len(rep.Normal) + len(rep.Exceptional); total != 6 {
		t.Errorf("Q3-style query: all 6 sources relevant, got %d", total)
	}
}

func TestLaggingSnifferShowsInconsistency(t *testing.T) {
	// Two machines report; one sniffer lags. A recency report must expose
	// the widened bound of inconsistency.
	db := newDB(t)
	sim, err := gridsim.New(gridsim.Config{Machines: 2, Seed: 3, JobRate: -1, HeartbeatEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(db, sim)
	slow := fleet.Sniffers[1]
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	fleet.DrainAll()
	slow.Pause()
	if err := sim.Run(60); err != nil {
		t.Fatal(err)
	}
	fleet.PollAll() // only the fast sniffer advances

	sess := db.NewSession()
	defer sess.Close()
	rep, err := report.Run(sess, `SELECT mach_id FROM Activity`, report.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bound < 55*time.Second {
		t.Errorf("bound = %v; expected the paused source to lag by ~60 virtual seconds", rep.Bound)
	}
}

func TestRegisterSource(t *testing.T) {
	db := newDB(t)
	epoch := fmt.Sprintf("TIMESTAMP '%s'", "1970-01-01 00:00:00")
	_ = epoch
	ts, _ := time.Parse("2006-01-02 15:04:05", "1970-01-01 00:00:00")
	for i := 0; i < 2; i++ { // idempotent
		if err := RegisterSource(db, "mX", timeValue(ts)); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := db.Query(`SELECT COUNT(*) FROM Heartbeat WHERE sid = 'mX'`)
	if res.Rows[0][0].Int() != 1 {
		t.Errorf("rows = %v", res.Rows[0][0])
	}
}

func TestFleetGet(t *testing.T) {
	db := newDB(t)
	sim, _ := gridsim.New(gridsim.Config{Machines: 3, Seed: 1})
	fleet := NewFleet(db, sim)
	if fleet.Get("Tao2") == nil {
		t.Error("Get(Tao2) = nil")
	}
	if fleet.Get("nope") != nil {
		t.Error("Get(nope) should be nil")
	}
	if !strings.HasPrefix(fleet.Sniffers[0].Source(), "Tao") {
		t.Error("source naming wrong")
	}
}

func timeValue(t time.Time) types.Value { return types.NewTime(t) }

// TestMotivatingAggregationQuery runs the intro's "how many jobs has each
// user run" style monitoring query (GROUP BY over sniffed data) with a
// recency report: the answer depends on which schedulers have reported in,
// and the report says exactly which.
func TestMotivatingAggregationQuery(t *testing.T) {
	db := newDB(t)
	sim, err := gridsim.New(gridsim.Config{Machines: 8, Schedulers: 2, Seed: 99, JobRate: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(db, sim)
	if err := sim.Run(30); err != nil {
		t.Fatal(err)
	}
	// Only scheduler Tao1's sniffer reports; Tao2's submissions are missing.
	if _, err := fleet.Get("Tao1").Poll(); err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession()
	defer sess.Close()
	rep, err := report.Run(sess, `SELECT job_user, COUNT(*) FROM S GROUP BY job_user ORDER BY job_user`,
		report.Config{SkipTempTables: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Result.Rows) == 0 {
		t.Fatal("no per-user rows at all")
	}
	// All 8 machines are relevant (no source predicate), and because Tao2
	// has never reported, the report's recency table has only sources that
	// did — exposing the incompleteness.
	if rep.Minimal {
		t.Error("aggregate query must be flagged as upper bound")
	}
	found := false
	for _, r := range rep.Reasons {
		if strings.Contains(r, "SPJ core") {
			found = true
		}
	}
	if !found {
		t.Errorf("reasons = %v", rep.Reasons)
	}
	// Counts from Tao1 only: fewer or equal to the simulator's truth.
	total := int64(0)
	for _, row := range rep.Result.Rows {
		total += row[1].Int()
	}
	if total == 0 || total > int64(len(sim.Jobs())) {
		t.Errorf("reported %d jobs, simulator created %d", total, len(sim.Jobs()))
	}
}

// TestHeartbeatProtocolTradeoff demonstrates §3.1: with the plain
// last-event protocol, a quiet-but-healthy machine looks very out of date;
// the heartbeat protocol ("nothing to report" records) keeps its recency
// honest. The observable difference is the report's bound of inconsistency.
func TestHeartbeatProtocolTradeoff(t *testing.T) {
	run := func(heartbeatEvery int) time.Duration {
		db := newDB(t)
		sim, err := gridsim.New(gridsim.Config{
			Machines: 4, Schedulers: 1, Seed: 5,
			JobRate:        -1, // nothing ever happens: all machines are quiet
			HeartbeatEvery: heartbeatEvery,
		})
		if err != nil {
			t.Fatal(err)
		}
		fleet := NewFleet(db, sim)
		if err := sim.Run(120); err != nil {
			t.Fatal(err)
		}
		if err := fleet.DrainAll(); err != nil {
			t.Fatal(err)
		}
		sess := db.NewSession()
		defer sess.Close()
		rep, err := report.Run(sess, `SELECT mach_id FROM Activity`, report.Config{SkipTempTables: true})
		if err != nil {
			t.Fatal(err)
		}
		// Age of the least recent source relative to the most recent one.
		return rep.Bound
	}

	// Without heartbeats every machine's recency froze at its initial
	// status event (tick 0): the bound collapses to ~0 but the data is two
	// minutes stale — indistinguishable from four dead machines.
	withoutHB := run(0)
	// With heartbeats recencies advance with virtual time.
	withHB := run(4)
	if withoutHB > time.Second {
		t.Errorf("without heartbeats all sources frozen equally, bound = %v", withoutHB)
	}
	if withHB > 10*time.Second {
		t.Errorf("with heartbeats bound should stay tight, got %v", withHB)
	}

	// The real difference: absolute recency. Re-run and compare the max
	// recency against the simulation clock.
	db := newDB(t)
	sim, _ := gridsim.New(gridsim.Config{Machines: 4, Schedulers: 1, Seed: 5, JobRate: -1, HeartbeatEvery: 4})
	fleet := NewFleet(db, sim)
	sim.Run(120)
	fleet.DrainAll()
	res, _ := db.Query(`SELECT MAX(recency) FROM Heartbeat`)
	maxRec := res.Rows[0][0].Time()
	lag := sim.Now().Sub(maxRec)
	if lag > 5*time.Second {
		t.Errorf("heartbeat protocol: recency lags the grid clock by %v", lag)
	}

	db2 := newDB(t)
	sim2, _ := gridsim.New(gridsim.Config{Machines: 4, Schedulers: 1, Seed: 5, JobRate: -1, HeartbeatEvery: 0})
	fleet2 := NewFleet(db2, sim2)
	sim2.Run(120)
	fleet2.DrainAll()
	res2, _ := db2.Query(`SELECT MAX(recency) FROM Heartbeat`)
	lag2 := sim2.Now().Sub(res2.Rows[0][0].Time())
	if lag2 < 100*time.Second {
		t.Errorf("last-event protocol on a quiet grid should lag ~120s, got %v", lag2)
	}
}

// TestPipelineConcurrencyStress runs loaders, reporters and checkpoints
// simultaneously; under -race this exercises every cross-component lock.
func TestPipelineConcurrencyStress(t *testing.T) {
	db := newDB(t)
	walPath := t.TempDir() + "/stress.wal"
	if err := db.AttachWAL(walPath); err != nil {
		t.Fatal(err)
	}
	defer db.DetachWAL()
	sim, err := gridsim.New(gridsim.Config{Machines: 10, Schedulers: 2, Seed: 31, JobRate: 2, HeartbeatEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(db, sim)

	done := make(chan struct{})
	var wg sync.WaitGroup
	// Simulation + loader goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 80; i++ {
			if err := sim.Tick(); err != nil {
				t.Error(err)
				return
			}
			if _, err := fleet.PollAll(); err != nil {
				t.Error(err)
				return
			}
		}
		close(done)
	}()
	// Concurrent reporters.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				sess := db.NewSession()
				rep, err := report.Run(sess, `SELECT mach_id, value FROM Activity WHERE value = 'busy'`,
					report.Config{SkipTempTables: true})
				if err != nil {
					t.Error(err)
					sess.Close()
					return
				}
				// Internal consistency of each report.
				if len(rep.Normal) > 0 && rep.Most.Recency.Before(rep.Least.Recency) {
					t.Errorf("report min/max inverted: %v > %v", rep.Least, rep.Most)
				}
				sess.Close()
			}
		}()
	}
	// Concurrent checkpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		dump := t.TempDir() + "/stress.dump"
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := db.Checkpoint(dump); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
