package sniffer

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestPollContextCanceledBeforeStart(t *testing.T) {
	db := newDB(t)
	s := New(db, "m1", heartbeatLog(t, 3))
	fastTune(s, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PollContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("PollContext on canceled ctx = %v, want context.Canceled", err)
	}
}

func TestPollContextCancelCutsBackoffShort(t *testing.T) {
	db := newDB(t)
	fl := &flakyLog{inner: heartbeatLog(t, 3)}
	fl.setFailures(100)
	s := New(db, "m1", fl)
	// A backoff far longer than the test: only cancellation can end the wait.
	s.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Minute, MaxDelay: time.Minute}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := s.PollContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PollContext = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation did not cut the backoff short: took %v", elapsed)
	}
}

func TestDrainAllContextCanceled(t *testing.T) {
	db := newDB(t)
	f := &Fleet{Sniffers: []*Sniffer{New(db, "m1", heartbeatLog(t, 1))}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.DrainAllContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("DrainAllContext on canceled ctx = %v, want context.Canceled", err)
	}
}

// Background-context wrappers must keep using the injected sleeper (tests
// depend on never really sleeping).
func TestPollBackgroundUsesInjectedSleep(t *testing.T) {
	db := newDB(t)
	fl := &flakyLog{inner: heartbeatLog(t, 2)}
	fl.setFailures(1)
	s := New(db, "m1", fl)
	slept := 0
	s.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Minute, MaxDelay: time.Minute}
	s.sleep = func(time.Duration) { slept++ }
	n, err := s.Poll()
	if err != nil || n != 2 {
		t.Fatalf("Poll = %d, %v", n, err)
	}
	if slept != 1 {
		t.Fatalf("injected sleeper called %d times, want 1", slept)
	}
}
