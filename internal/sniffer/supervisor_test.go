package sniffer

import (
	"testing"
	"time"

	"trac/internal/gridsim"
)

func TestSupervisorOneFailingSourceNeverStopsTheFleet(t *testing.T) {
	db := newDB(t)
	var faulty []*gridsim.FaultyLog
	cfg := gridsim.Config{Machines: 4, Schedulers: 1, Seed: 21, JobRate: 1, HeartbeatEvery: 2,
		NewLog: func(machine string) (gridsim.Log, error) {
			fl := gridsim.NewFaultyLog(gridsim.NewMemoryLog(), gridsim.Faults{})
			faulty = append(faulty, fl)
			return fl, nil
		}}
	sim, err := gridsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	// Tao2's log fails on every read from the start.
	faulty[1].SetFaults(gridsim.Faults{ReadError: 1, Seed: 3})

	fleet := NewFleet(db, sim)
	for _, s := range fleet.Sniffers {
		fastTune(s, NewBreaker(2, time.Hour))
		s.Retry.MaxAttempts = 1
	}
	sv := NewSupervisor(fleet, SupervisorConfig{Interval: time.Millisecond, PollTimeout: time.Second})
	sv.Start()
	defer sv.Stop()

	// Every healthy source fully drains and Tao2's breaker trips, all while
	// Tao2 keeps failing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		caught := fleet.Get("Tao2").Health().Status == StatusOpenCircuit
		for i, s := range fleet.Sniffers {
			if i == 1 {
				continue
			}
			lag, err := s.Lag()
			if err != nil || lag != 0 {
				caught = false
			}
		}
		if caught {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached drained-but-Tao2-quarantined; Tao2 = %+v",
				fleet.Get("Tao2").Health())
		}
		time.Sleep(time.Millisecond)
	}
	sv.Stop()
	for _, h := range fleet.Health() {
		if h.Source != "Tao2" && h.Status == StatusOpenCircuit {
			t.Errorf("%s was quarantined by a neighbor's failure", h.Source)
		}
	}

	// Second Start after Stop works (restart-ability), and Tao2 recovers once
	// its log heals and its breaker cools down.
	faulty[1].SetFaults(gridsim.Faults{})
	fleet.Get("Tao2").Breaker().Cooldown = time.Millisecond
	sv2 := NewSupervisor(fleet, SupervisorConfig{Interval: time.Millisecond, PollTimeout: time.Second})
	sv2.Start()
	defer sv2.Stop()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if lag, err := fleet.Get("Tao2").Lag(); err == nil && lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Tao2 did not recover after its log healed")
		}
		time.Sleep(time.Millisecond)
	}
	if st := fleet.Get("Tao2").Health().Status; st != StatusOK {
		t.Errorf("Tao2 status = %s after recovery", st)
	}
}

// blockingLog hangs ReadFrom until released, simulating a source that
// stops responding entirely (no error, no data).
type blockingLog struct {
	inner   gridsim.Log
	release chan struct{}
}

func (l *blockingLog) Append(e gridsim.Event) error { return l.inner.Append(e) }
func (l *blockingLog) Len() (int, error)            { return l.inner.Len() }
func (l *blockingLog) Close() error                 { return l.inner.Close() }

func (l *blockingLog) ReadFrom(offset int) ([]gridsim.Event, int, error) {
	<-l.release
	return l.inner.ReadFrom(offset)
}

func TestSupervisorWatchdogCountsHungPolls(t *testing.T) {
	db := newDB(t)
	bl := &blockingLog{inner: heartbeatLog(t, 2), release: make(chan struct{})}
	hung := New(db, "m1", bl)
	healthy := New(db, "m2", func() gridsim.Log {
		l := gridsim.NewMemoryLog()
		l.Append(gridsim.Event{Time: time.Date(2006, 3, 15, 12, 0, 0, 0, time.UTC),
			Machine: "m2", Type: gridsim.HeartbeatEvent})
		return l
	}())
	fleet := &Fleet{Sniffers: []*Sniffer{hung, healthy}}

	sv := NewSupervisor(fleet, SupervisorConfig{Interval: time.Millisecond, PollTimeout: 5 * time.Millisecond})
	sv.Start()

	// The healthy source drains while m1 hangs; the watchdog notices the
	// hung poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if lag, err := healthy.Lag(); err == nil && lag == 0 && sv.Timeouts() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeouts = %d, healthy lag unknown; watchdog never fired", sv.Timeouts())
		}
		time.Sleep(time.Millisecond)
	}

	// Stop returns promptly even with a poll still hung (the loop abandons
	// waiting for it). Release the log afterwards so the goroutine exits.
	stopped := make(chan struct{})
	go func() { sv.Stop(); close(stopped) }()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop blocked on a hung poll")
	}
	close(bl.release)
}
