package shard

import (
	"fmt"
	"strings"

	"trac/internal/engine"
	"trac/internal/exec"
	"trac/internal/planner"
	"trac/internal/sqlparser"
	"trac/internal/types"
)

// Query runs a SELECT across the shards under a fresh consistent cut.
func (r *Router) Query(sql string) (*engine.Result, error) {
	cut, err := r.Cut()
	if err != nil {
		return nil, err
	}
	return r.QueryAt(sql, cut)
}

// QueryAt runs a SELECT under a caller-provided cut (a recency report passes
// one cut to both of its queries).
func (r *Router) QueryAt(sql string, cut Cut) (*engine.Result, error) {
	sel, err := r.shards[0].ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return r.QueryStmtAt(sel, sql, cut)
}

// QueryStmtAt runs an already-parsed SELECT under a cut. The SQL text keys
// the scatter-plan cache.
func (r *Router) QueryStmtAt(sel *sqlparser.SelectStmt, sql string, cut Cut) (*engine.Result, error) {
	sp, err := r.plan(sel, sql, cut.Version)
	if err != nil {
		return nil, err
	}
	return r.executeScatter(sp, cut)
}

// plan returns the cached scatter decomposition for (sql, catalog version),
// decomposing on miss. The version comes from a Cut, so a cached plan can
// never be replayed against a shard set that has since seen DDL.
func (r *Router) plan(sel *sqlparser.SelectStmt, sql string, version uint64) (*scatterPlan, error) {
	key := "scatter:" + engine.NormalizeSQL(sql)
	if v, ok := r.cache.Get(key, version); ok {
		return v.(*scatterPlan), nil
	}
	sp, err := r.decompose(sel)
	if err != nil {
		return nil, err
	}
	r.cache.Put(key, version, sp)
	return sp, nil
}

// Explain renders the scatter decomposition — the per-block `shards: k of N,
// pruned p` note — followed by the engine plan of each block's first shard.
func (r *Router) Explain(sql string) (string, error) {
	cut, err := r.Cut()
	if err != nil {
		return "", err
	}
	sel, err := r.shards[0].ParseSelect(sql)
	if err != nil {
		return "", err
	}
	sp, err := r.plan(sel, sql, cut.Version)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i, bp := range sp.blocks {
		if len(sp.blocks) > 1 {
			fmt.Fprintf(&sb, "scatter block %d: ", i)
		} else {
			sb.WriteString("scatter: ")
		}
		if bp.replicated {
			fmt.Fprintf(&sb, "shards: 1 of %d, replicated", len(r.shards))
		} else {
			sb.WriteString(planner.ShardNote(len(bp.shards), len(r.shards), bp.pruned))
		}
		sb.WriteString("\n")
		first := bp.shards[0]
		plan, err := r.shards[first].Planner().PlanSelect(bp.stmt, cut.Snaps[first])
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "shard %d plan:\n%s\n", first, plan.Describe())
	}
	return strings.TrimRight(sb.String(), "\n"), nil
}

// executeScatter plans every (block, shard) statement under the cut's
// snapshots, drains all of them concurrently (the scatter), then merges
// per-shard partials in deterministic shard order (the gather).
func (r *Router) executeScatter(sp *scatterPlan, cut Cut) (*engine.Result, error) {
	var ops []exec.Operator
	starts := make([]int, len(sp.blocks)+1)
	maxParallel, vectorized := 1, false
	for bi, bp := range sp.blocks {
		starts[bi] = len(ops)
		for _, s := range bp.shards {
			plan, err := r.shards[s].Planner().PlanSelect(bp.stmt, cut.Snaps[s])
			if err != nil {
				return nil, err
			}
			if plan.Parallel > maxParallel {
				maxParallel = plan.Parallel
			}
			vectorized = vectorized || plan.Vectorized
			ops = append(ops, plan.Root)
		}
	}
	starts[len(sp.blocks)] = len(ops)
	perOp, err := exec.DrainAll(ops)
	if err != nil {
		return nil, err
	}
	if len(ops) > maxParallel {
		maxParallel = len(ops)
	}

	blockRows := make([][][]types.Value, len(sp.blocks))
	for bi, bp := range sp.blocks {
		rows, err := bp.gather(perOp[starts[bi]:starts[bi+1]])
		if err != nil {
			return nil, err
		}
		blockRows[bi] = rows
	}

	var rows [][]types.Value
	if len(sp.blocks) == 1 {
		rows = blockRows[0]
	} else {
		// UNION: set semantics across blocks, then the outer ORDER BY/LIMIT
		// over output columns — the unsharded planUnion tail.
		children := make([]exec.Operator, len(blockRows))
		for i, br := range blockRows {
			children[i] = &exec.ValuesOp{RowsData: br}
		}
		var root exec.Operator = &exec.Union{Children: children}
		root, err = applyOutputOrderLimit(root, sp.sel, sp.columns)
		if err != nil {
			return nil, err
		}
		rows, err = exec.Drain(root)
		if err != nil {
			return nil, err
		}
	}
	return &engine.Result{Columns: sp.columns, Rows: rows, Parallel: maxParallel, Vectorized: vectorized}, nil
}

// gather merges one block's per-shard results (in shard order) into the rows
// the unsharded engine would produce for that block.
func (bp *blockPlan) gather(perShard [][][]types.Value) ([][]types.Value, error) {
	if bp.agg != nil {
		return bp.agg.gather(perShard)
	}
	n := 0
	for _, rows := range perShard {
		n += len(rows)
	}
	all := make([][]types.Value, 0, n)
	for _, rows := range perShard {
		all = append(all, rows...)
	}
	var root exec.Operator = &exec.ValuesOp{RowsData: all}
	if len(bp.sortKeys) > 0 {
		root = &exec.Sort{Child: root, Keys: posSortKeys(bp.sortKeys)}
	}
	if hidden := bp.extendedWidth() > bp.nVisible; hidden {
		root = &exec.Project{Child: root, Exprs: identityEvals(bp.nVisible)}
	}
	if bp.distinct {
		root = &exec.Distinct{Child: root}
	}
	if bp.limit != nil {
		root = &exec.Limit{Child: root, N: *bp.limit}
	}
	return exec.Drain(root)
}

// extendedWidth is the per-shard tuple width including hidden ORDER BY
// columns.
func (bp *blockPlan) extendedWidth() int {
	w := bp.nVisible
	for _, k := range bp.sortKeys {
		if k.pos >= w {
			w = k.pos + 1
		}
	}
	return w
}

func posSortKeys(keys []posKey) []exec.SortKey {
	out := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		pos := k.pos
		out[i] = exec.SortKey{
			Expr: func(row []types.Value) (types.Value, error) { return row[pos], nil },
			Desc: k.desc,
		}
	}
	return out
}

func identityEvals(n int) []exec.Evaluator {
	out := make([]exec.Evaluator, n)
	for i := range out {
		pos := i
		out[i] = func(row []types.Value) (types.Value, error) { return row[pos], nil }
	}
	return out
}

// partialAcc accumulates one partial column across shards. SUM stays on the
// exact int64 path until a float partial or an overflow demotes it — the
// same discipline the engine's aggregate accumulators use, so a sharded
// pure-INT SUM/AVG is bit-identical to the unsharded one.
type partialAcc struct {
	kind    partialKind
	seen    bool
	count   int64
	intOnly bool
	isum    int64
	fsum    float64
	val     types.Value // MIN/MAX carrier
}

func newPartialAcc(kind partialKind) partialAcc {
	return partialAcc{kind: kind, intOnly: true, val: types.Null}
}

// addInt64 adds with overflow detection (two same-sign operands whose sum
// flips sign overflowed).
func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func (a *partialAcc) merge(v types.Value) error {
	switch a.kind {
	case mergeCount:
		a.count += v.Int()
	case mergeSum:
		if v.IsNull() {
			return nil
		}
		a.seen = true
		if v.Kind() == types.KindInt && a.intOnly {
			if s, ok := addInt64(a.isum, v.Int()); ok {
				a.isum = s
				return nil
			}
		}
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("shard: SUM partial of kind %s", v.Kind())
		}
		if a.intOnly {
			a.intOnly = false
			a.fsum += float64(a.isum)
		}
		a.fsum += f
	case mergeMin:
		if !v.IsNull() && (a.val.IsNull() || types.Less(v, a.val)) {
			a.val = v
		}
	case mergeMax:
		if !v.IsNull() && (a.val.IsNull() || types.Less(a.val, v)) {
			a.val = v
		}
	}
	return nil
}

// value finalizes a direct (non-AVG) partial.
func (a *partialAcc) value() types.Value {
	switch a.kind {
	case mergeCount:
		return types.NewInt(a.count)
	case mergeSum:
		switch {
		case !a.seen:
			return types.Null
		case a.intOnly:
			return types.NewInt(a.isum)
		default:
			return types.NewFloat(a.fsum)
		}
	default:
		return a.val
	}
}

// gather merges per-shard partial-aggregate tables group by group, finalizes
// the original aggregate calls, then replays the finishGrouped tail (HAVING
// filter, ORDER BY, projection) plus the block's DISTINCT/LIMIT.
func (ag *aggGather) gather(perShard [][][]types.Value) ([][]types.Value, error) {
	type group struct {
		keys []types.Value
		accs []partialAcc
	}
	groups := make(map[string]*group)
	var order []*group
	var keyBuf []byte
	for _, rows := range perShard {
		for _, row := range rows {
			keyBuf = exec.AppendKey(keyBuf[:0], row[:ag.nKeys]...)
			g, ok := groups[string(keyBuf)]
			if !ok {
				g = &group{
					keys: append([]types.Value(nil), row[:ag.nKeys]...),
					accs: make([]partialAcc, len(ag.partials)),
				}
				for i, kind := range ag.partials {
					g.accs[i] = newPartialAcc(kind)
				}
				groups[string(keyBuf)] = g
				order = append(order, g)
			}
			for i := range ag.partials {
				if err := g.accs[i].merge(row[ag.nKeys+i]); err != nil {
					return nil, err
				}
			}
		}
	}
	// A global aggregate with no GROUP BY emits one row even over zero
	// input — but each shard already contributed exactly one partial row,
	// so the empty-groups case can only mean an all-keyed aggregation with
	// no matching rows anywhere: zero groups, zero output.
	final := make([][]types.Value, len(order))
	for gi, g := range order {
		row := make([]types.Value, ag.nKeys+len(ag.finals))
		copy(row, g.keys)
		for fi, fs := range ag.finals {
			if !fs.avg {
				row[ag.nKeys+fi] = g.accs[fs.partial].value()
				continue
			}
			sum, cnt := &g.accs[fs.sum], &g.accs[fs.cnt]
			switch {
			case cnt.count == 0:
				row[ag.nKeys+fi] = types.Null
			case sum.intOnly:
				row[ag.nKeys+fi] = types.NewFloat(float64(sum.isum) / float64(cnt.count))
			default:
				row[ag.nKeys+fi] = types.NewFloat(sum.fsum / float64(cnt.count))
			}
		}
		final[gi] = row
	}
	return ag.finishMerged(final)
}

// finishMerged compiles the block's items/HAVING/ORDER BY against the merged
// [keys..., aggregates...] tuple — the same compile-hook scheme the planner's
// finishGrouped uses — and runs the operator tail in the unsharded order:
// HAVING filter, sort, projection, DISTINCT, LIMIT.
func (ag *aggGather) finishMerged(final [][]types.Value) ([][]types.Value, error) {
	groupedLayout := exec.NewLayout(nil)
	hook := func(e sqlparser.Expr) (exec.Evaluator, bool, error) {
		if fc, ok := e.(*sqlparser.FuncCall); ok {
			text := fc.SQL()
			for i, s := range ag.aggSQL {
				if s == text {
					pos := ag.nKeys + i
					return func(row []types.Value) (types.Value, error) { return row[pos], nil }, true, nil
				}
			}
			return nil, false, fmt.Errorf("shard: aggregate %s missing from gather plan", text)
		}
		text := e.SQL()
		for i, k := range ag.keySQL {
			if k == text {
				pos := i
				return func(row []types.Value) (types.Value, error) { return row[pos], nil }, true, nil
			}
		}
		if cr, ok := e.(*sqlparser.ColumnRef); ok {
			for i, k := range ag.keySQL {
				if kr, err := sqlparser.ParseExpr(k); err == nil {
					if kcr, ok := kr.(*sqlparser.ColumnRef); ok && strings.EqualFold(kcr.Column, cr.Column) {
						pos := i
						return func(row []types.Value) (types.Value, error) { return row[pos], nil }, true, nil
					}
				}
			}
			return nil, false, fmt.Errorf("planner: column %q must appear in GROUP BY or inside an aggregate", cr.SQL())
		}
		return nil, false, nil
	}

	itemEvals := make([]exec.Evaluator, len(ag.items))
	for i, it := range ag.items {
		ev, err := exec.CompileWith(it, groupedLayout, hook)
		if err != nil {
			return nil, err
		}
		itemEvals[i] = ev
	}
	var having exec.Evaluator
	if ag.sel.Having != nil {
		ev, err := exec.CompileWith(ag.sel.Having, groupedLayout, hook)
		if err != nil {
			return nil, err
		}
		having = ev
	}
	var sortKeys []exec.SortKey
	for _, o := range ag.sel.OrderBy {
		oe := o.Expr
		if lit, ok := oe.(*sqlparser.Literal); ok && lit.Val.Kind() == types.KindInt {
			pos := int(lit.Val.Int()) - 1
			if pos < 0 || pos >= len(ag.items) {
				return nil, fmt.Errorf("planner: ORDER BY position %d out of range", pos+1)
			}
			oe = ag.items[pos]
		} else if cr, ok := oe.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			for i, it := range ag.sel.Items {
				if strings.EqualFold(it.Alias, cr.Column) {
					oe = ag.items[i]
					break
				}
			}
		}
		ev, err := exec.CompileWith(oe, groupedLayout, hook)
		if err != nil {
			return nil, err
		}
		sortKeys = append(sortKeys, exec.SortKey{Expr: ev, Desc: o.Desc})
	}

	var root exec.Operator = &exec.ValuesOp{RowsData: final}
	if having != nil {
		root = &exec.Filter{Child: root, Pred: having}
	}
	if len(sortKeys) > 0 {
		root = &exec.Sort{Child: root, Keys: sortKeys}
	}
	root = &exec.Project{Child: root, Exprs: itemEvals}
	if ag.sel.Distinct {
		root = &exec.Distinct{Child: root}
	}
	if ag.sel.Limit != nil {
		root = &exec.Limit{Child: root, N: *ag.sel.Limit}
	}
	return exec.Drain(root)
}

// applyOutputOrderLimit mirrors the planner's UNION tail: ORDER BY resolves
// against output columns by name or 1-based position.
func applyOutputOrderLimit(root exec.Operator, sel *sqlparser.SelectStmt, columns []string) (exec.Operator, error) {
	if len(sel.OrderBy) > 0 {
		var keys []exec.SortKey
		for _, o := range sel.OrderBy {
			idx := -1
			switch e := o.Expr.(type) {
			case *sqlparser.Literal:
				if e.Val.Kind() == types.KindInt {
					idx = int(e.Val.Int()) - 1
				}
			case *sqlparser.ColumnRef:
				for i, c := range columns {
					if strings.EqualFold(c, e.Column) {
						idx = i
						break
					}
				}
			}
			if idx < 0 || idx >= len(columns) {
				return nil, fmt.Errorf("planner: ORDER BY over a UNION must reference an output column")
			}
			i := idx
			keys = append(keys, exec.SortKey{
				Expr: func(row []types.Value) (types.Value, error) { return row[i], nil },
				Desc: o.Desc,
			})
		}
		root = &exec.Sort{Child: root, Keys: keys}
	}
	if sel.Limit != nil {
		root = &exec.Limit{Child: root, N: *sel.Limit}
	}
	return root, nil
}
