// Package shard implements sharded scatter-gather execution: a Router
// hash-partitions source-keyed tables across N independent engine shards
// (each with its own heap, segments, zone maps and morsel pool), computes
// the shard set a query must touch from its partition-key bound — the same
// relevant-source bound the recency generator produces, which is what turns
// the paper's relevant-source analysis into shard pruning — and gathers
// per-shard partial results into exactly the rows the unsharded engine
// would return.
//
// Consistency across shards follows DBLog's virtual-cut idea: a query (or a
// recency report) first captures a Cut — one MVCC snapshot per shard plus
// the common catalog version — under a lock that every multi-shard mutation
// holds exclusively. Writes confined to one shard commit atomically within
// that shard, so they need no router-level exclusion; writes spanning
// shards (replicated-table DML, DDL broadcasts, multi-shard inserts) are
// serialized against cut capture, so a report can never observe half of a
// cross-shard change.
package shard

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"trac/internal/engine"
	"trac/internal/exec"
	"trac/internal/sqlparser"
	"trac/internal/storage"
	"trac/internal/txn"
	"trac/internal/types"
)

// Router owns N engine shards and routes statements across them.
type Router struct {
	shards []*engine.DB

	// mu is the consistent-cut lock. Cut capture and single multi-statement
	// reads take it shared; every mutation that must land on more than one
	// shard atomically (DDL broadcast, replicated-table DML, a routed
	// insert spanning shards) takes it exclusively. Single-shard writes
	// bypass it: they are atomic within their shard's MVCC, so any cut
	// either sees them committed or not at all.
	mu sync.RWMutex

	// part maps lower(table name) -> partition column name for the tables
	// that are hash-partitioned. Every other table is replicated to all
	// shards by the broadcast paths.
	part map[string]string

	// cache holds scatter plans keyed by normalized SQL, tagged with the
	// coherent catalog version a Cut certifies, so a DDL broadcast (which
	// bumps every shard's version under the exclusive lock) invalidates
	// cached decompositions exactly like it invalidates engine plans.
	cache *engine.PlanCache
}

// New creates a router over n fresh in-memory engine shards.
func New(n int) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	r := &Router{
		shards: make([]*engine.DB, n),
		part:   make(map[string]string),
		cache:  engine.NewPlanCache(0),
	}
	for i := range r.shards {
		r.shards[i] = engine.New()
	}
	return r, nil
}

// N returns the shard count.
func (r *Router) N() int { return len(r.shards) }

// Shard returns shard i's engine. Callers that write through it directly
// bypass the router's routing and cut discipline; it is intended for reads,
// tests and per-shard tuning (planner knobs, seal thresholds).
func (r *Router) Shard(i int) *engine.DB { return r.shards[i] }

// Cache returns the router's scatter-plan cache.
func (r *Router) Cache() *engine.PlanCache { return r.cache }

// Cut is a consistent cross-shard read point: one MVCC snapshot per shard,
// all captured under the cut lock, plus the catalog version every shard
// agreed on at capture time.
type Cut struct {
	Snaps   []txn.Snapshot
	Version uint64
}

// Cut captures a consistent cut. It asserts catalog-version coherence: under
// the shared lock no DDL broadcast can be in flight, so unequal versions
// mean some shard's catalog was mutated behind the router's back.
func (r *Router) Cut() (Cut, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cutLocked()
}

// cutLocked captures the snapshot vector; callers hold r.mu (either mode).
func (r *Router) cutLocked() (Cut, error) {
	c := Cut{Snaps: make([]txn.Snapshot, len(r.shards)), Version: r.shards[0].CatalogVersion()}
	for i, db := range r.shards {
		if v := db.CatalogVersion(); v != c.Version {
			return Cut{}, fmt.Errorf("shard: catalog version skew (shard 0 at %d, shard %d at %d): a shard was mutated outside the router",
				c.Version, i, v)
		}
		c.Snaps[i] = db.Snapshot()
	}
	return c, nil
}

// Partition declares table as hash-partitioned on column. It must be called
// after the table's DDL has been broadcast and before any rows are loaded;
// repartitioning live data is not supported.
func (r *Router) Partition(table, column string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(table)
	if _, ok := r.part[key]; ok {
		return fmt.Errorf("shard: table %s is already partitioned", table)
	}
	for i, db := range r.shards {
		tbl, err := db.Catalog().Get(table)
		if err != nil {
			return err
		}
		if tbl.Schema.ColumnIndex(column) < 0 {
			return fmt.Errorf("shard: table %s has no column %q", table, column)
		}
		if tbl.NumVersions() > 0 {
			return fmt.Errorf("shard: cannot partition table %s with existing rows on shard %d", table, i)
		}
	}
	for i, db := range r.shards {
		tbl, _ := db.Catalog().Get(table)
		tbl.SetPartition(storage.Partition{Index: i, Of: len(r.shards), Column: column})
	}
	r.part[key] = column
	return nil
}

// PartitionColumn returns the partition column for a table, or ok=false when
// the table is replicated.
func (r *Router) PartitionColumn(table string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	col, ok := r.part[strings.ToLower(table)]
	return col, ok
}

// ShardOf hashes a partition-key value to its shard. NULL keys route to
// shard 0 (they can never match an equality bound, so pruning stays sound).
func (r *Router) ShardOf(v types.Value) int {
	if v.IsNull() {
		return 0
	}
	h := fnv.New32a()
	h.Write(exec.AppendKey(nil, v))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// Exec parses and executes a statement across the shards: SELECTs scatter,
// DML routes by partition key or broadcasts, DDL broadcasts to every shard
// under the exclusive cut lock.
func (r *Router) Exec(sql string) (int, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, err
	}
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		res, err := r.Query(sql)
		if err != nil {
			return 0, err
		}
		return len(res.Rows), nil
	case *sqlparser.InsertStmt:
		return r.execInsert(s)
	case *sqlparser.UpdateStmt:
		if col, ok := r.PartitionColumn(s.Table); ok {
			for _, a := range s.Set {
				if strings.EqualFold(a.Column, col) {
					return 0, fmt.Errorf("shard: UPDATE of partition column %s.%s would require moving rows between shards", s.Table, col)
				}
			}
			return r.broadcastSum(sql)
		}
		return r.broadcastReplicated(sql)
	case *sqlparser.DeleteStmt:
		if _, ok := r.PartitionColumn(s.Table); ok {
			return r.broadcastSum(sql)
		}
		return r.broadcastReplicated(sql)
	case *sqlparser.DropTableStmt:
		n, err := r.broadcastDDL(sql)
		if err == nil {
			r.mu.Lock()
			delete(r.part, strings.ToLower(s.Name))
			r.mu.Unlock()
		}
		return n, err
	default:
		// Remaining statements (CREATE TABLE/INDEX, ANALYZE) are
		// shard-local DDL/maintenance applied uniformly everywhere.
		return r.broadcastDDL(sql)
	}
}

// broadcastDDL applies a statement to every shard under the exclusive cut
// lock: no cut can observe some shards at the new catalog version and others
// at the old one, which is what keeps version-keyed plan caches coherent.
func (r *Router) broadcastDDL(sql string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i, db := range r.shards {
		m, err := db.Exec(sql)
		if err != nil {
			// Roll-forward is impossible for arbitrary DDL; surface how far
			// the broadcast got so the operator can reconcile.
			return 0, fmt.Errorf("shard: DDL broadcast failed on shard %d of %d (earlier shards already applied): %w", i, len(r.shards), err)
		}
		n = m
	}
	return n, nil
}

// broadcastSum executes a DML statement on every shard and sums the affected
// counts — the right combination for a partitioned table, whose rows are
// disjoint across shards.
func (r *Router) broadcastSum(sql string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for i, db := range r.shards {
		n, err := db.Exec(sql)
		if err != nil {
			return 0, fmt.Errorf("shard: broadcast failed on shard %d (earlier shards already applied): %w", i, err)
		}
		total += n
	}
	return total, nil
}

// broadcastReplicated executes a DML statement on every shard and returns
// shard 0's affected count — replicas are identical, so per-shard counts
// agree and summing would overcount.
func (r *Router) broadcastReplicated(sql string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	first := 0
	for i, db := range r.shards {
		n, err := db.Exec(sql)
		if err != nil {
			return 0, fmt.Errorf("shard: broadcast failed on shard %d (earlier shards already applied): %w", i, err)
		}
		if i == 0 {
			first = n
		} else if n != first {
			return 0, fmt.Errorf("shard: replicated DML diverged (shard 0 affected %d rows, shard %d affected %d)", first, i, n)
		}
	}
	return first, nil
}

// Atomic runs fn against every shard under the exclusive cut lock, so the
// whole round is one indivisible event from any Cut's point of view. Used
// for replicated multi-statement mutations (e.g. heartbeat upserts).
func (r *Router) Atomic(fn func(db *engine.DB) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, db := range r.shards {
		if err := fn(db); err != nil {
			return fmt.Errorf("shard: atomic broadcast failed on shard %d (earlier shards already applied): %w", i, err)
		}
	}
	return nil
}

// execInsert routes an INSERT: a partitioned table's rows are grouped by the
// hash of their partition-column value and applied per shard; everything
// else is replicated everywhere. An insert that lands on more than one shard
// takes the exclusive cut lock so a report cannot see a torn multi-row
// insert.
func (r *Router) execInsert(s *sqlparser.InsertStmt) (int, error) {
	col, ok := r.PartitionColumn(s.Table)
	if !ok {
		return r.broadcastReplicated(s.SQL())
	}
	tbl, err := r.shards[0].Catalog().Get(s.Table)
	if err != nil {
		return 0, err
	}
	ci := tbl.Schema.ColumnIndex(col)
	// Position of the partition column in the VALUES tuples.
	vi := ci
	if len(s.Columns) > 0 {
		vi = -1
		for i, c := range s.Columns {
			if strings.EqualFold(c, col) {
				vi = i
				break
			}
		}
	}
	emptyLayout := exec.NewLayout(nil)
	perShard := make([][][]sqlparser.Expr, len(r.shards))
	for _, row := range s.Rows {
		target := 0
		if vi >= 0 && vi < len(row) {
			ev, err := exec.Compile(row[vi], emptyLayout)
			if err != nil {
				return 0, err
			}
			v, err := ev(nil)
			if err != nil {
				return 0, err
			}
			v, err = engine.CoerceToColumn(v, tbl.Schema.Columns[ci])
			if err != nil {
				return 0, fmt.Errorf("shard: column %s: %w", col, err)
			}
			target = r.ShardOf(v)
		}
		perShard[target] = append(perShard[target], row)
	}
	targets := 0
	for _, rows := range perShard {
		if len(rows) > 0 {
			targets++
		}
	}
	if targets > 1 {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	return r.applyRoutedInsert(s, perShard)
}

// applyRoutedInsert stages one batch per target shard, executes all of them,
// and commits only when every stage succeeded, so a constraint violation on
// any shard aborts the whole insert.
func (r *Router) applyRoutedInsert(s *sqlparser.InsertStmt, perShard [][][]sqlparser.Expr) (int, error) {
	var batches []*engine.Batch
	abort := func() {
		for _, b := range batches {
			_ = b.Abort()
		}
	}
	total := 0
	for i, rows := range perShard {
		if len(rows) == 0 {
			continue
		}
		sub := &sqlparser.InsertStmt{Table: s.Table, Columns: s.Columns, Rows: rows}
		b := r.shards[i].BeginBatch()
		batches = append(batches, b)
		n, err := b.ExecStmt(sub)
		if err != nil {
			abort()
			return 0, err
		}
		total += n
	}
	for _, b := range batches {
		if err := b.Commit(); err != nil {
			abort() // aborts the not-yet-committed remainder
			return 0, fmt.Errorf("shard: routed insert commit failed (insert may be partially applied): %w", err)
		}
	}
	return total, nil
}

// LoadRows bulk-loads typed rows directly into a table's heap, bypassing the
// SQL layer like workload loading does. Partitioned tables route each row by
// its partition-column value; replicated tables receive every row on every
// shard. The whole load runs under the exclusive cut lock.
func (r *Router) LoadRows(table string, rows [][]types.Value) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	col, partitioned := r.part[strings.ToLower(table)]
	tbl0, err := r.shards[0].Catalog().Get(table)
	if err != nil {
		return err
	}
	if !partitioned {
		for _, db := range r.shards {
			tbl, err := db.Catalog().Get(table)
			if err != nil {
				return err
			}
			if err := bulkAppend(db, tbl, rows); err != nil {
				return err
			}
		}
		return nil
	}
	ci := tbl0.Schema.ColumnIndex(col)
	perShard := make([][][]types.Value, len(r.shards))
	for _, row := range rows {
		target := 0
		if ci < len(row) {
			target = r.ShardOf(row[ci])
		}
		perShard[target] = append(perShard[target], row)
	}
	for i, part := range perShard {
		if len(part) == 0 {
			continue
		}
		tbl, err := r.shards[i].Catalog().Get(table)
		if err != nil {
			return err
		}
		if err := bulkAppend(r.shards[i], tbl, part); err != nil {
			return err
		}
	}
	return nil
}

// bulkAppend inserts rows in chunked transactions (same chunking as the
// workload loader).
func bulkAppend(db *engine.DB, tbl *storage.Table, rows [][]types.Value) error {
	const chunk = 50_000
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		tx := db.Manager().Begin()
		for _, row := range rows[lo:hi] {
			if err := tx.InsertRow(tbl, storage.NewRow(row, 0)); err != nil {
				tx.Abort()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// SealAll seals every shard's tables into columnar segments and returns the
// total rows sealed.
func (r *Router) SealAll() int {
	n := 0
	for _, db := range r.shards {
		n += db.SealAll()
	}
	return n
}

// SettleVersions realigns shard catalog versions after an out-of-band
// mutation on one shard (e.g. a session persisting a temp table on shard 0):
// every shard is bumped up to the maximum version. Versions are opaque
// monotonic counters, so equalizing at the max is safe and evicts any plan
// cached under a stale mixed state.
func (r *Router) SettleVersions() {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max uint64
	for _, db := range r.shards {
		if v := db.CatalogVersion(); v > max {
			max = v
		}
	}
	for _, db := range r.shards {
		for db.CatalogVersion() < max {
			db.Catalog().BumpVersion()
		}
	}
}

// TableStat is one table replica's partition-aware storage summary on one
// shard.
type TableStat struct {
	Shard int
	Table string
	Stats storage.PartitionStats
}

// Stats reports per-shard, per-table partition/seal/zone statistics, shards
// outermost, table names in catalog order.
func (r *Router) Stats() []TableStat {
	var out []TableStat
	for i, db := range r.shards {
		for _, name := range db.Catalog().Names() {
			tbl, err := db.Catalog().Get(name)
			if err != nil {
				continue
			}
			out = append(out, TableStat{Shard: i, Table: name, Stats: tbl.PartitionStats()})
		}
	}
	return out
}
