package shard_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"trac/internal/engine"
	"trac/internal/shard"
	"trac/internal/types"
)

func normalize(sql string) string { return engine.NormalizeSQL(sql) }

// newRouter builds an n-shard router with Activity partitioned on mach_id
// and Routing replicated, loaded through the SQL path.
func newRouter(t *testing.T, n int) *shard.Router {
	t.Helper()
	r, err := shard.New(n)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, r, `CREATE TABLE Activity (mach_id TEXT, value TEXT, event_time TIMESTAMP)`)
	mustExec(t, r, `CREATE TABLE Routing (mach_id TEXT, neighbor TEXT, event_time TIMESTAMP)`)
	if err := r.Partition("Activity", "mach_id"); err != nil {
		t.Fatal(err)
	}
	return r
}

func mustExec(t *testing.T, r *shard.Router, sql string) int {
	t.Helper()
	n, err := r.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return n
}

func TestNewValidatesShardCount(t *testing.T) {
	if _, err := shard.New(0); err == nil {
		t.Fatal("New(0) should fail")
	}
}

func TestPartitionValidation(t *testing.T) {
	r := newRouter(t, 4)
	if err := r.Partition("Activity", "mach_id"); err == nil {
		t.Error("double partition should fail")
	}
	if err := r.Partition("Routing", "no_such_col"); err == nil {
		t.Error("partition on unknown column should fail")
	}
	mustExec(t, r, `INSERT INTO Routing VALUES ('Tao1', 'Tao2', NULL)`)
	if err := r.Partition("Routing", "mach_id"); err == nil {
		t.Error("partition of a table with rows should fail")
	}
	if col, ok := r.PartitionColumn("activity"); !ok || col != "mach_id" {
		t.Errorf("PartitionColumn(activity) = %q, %v", col, ok)
	}
	if _, ok := r.PartitionColumn("Routing"); ok {
		t.Error("Routing should be replicated")
	}
}

// TestInsertRouting checks a partitioned insert lands on exactly the shard
// its key hashes to, and a replicated insert lands everywhere.
func TestInsertRouting(t *testing.T) {
	r := newRouter(t, 4)
	mustExec(t, r, `INSERT INTO Activity VALUES ('Tao1', 'idle', '2006-03-15 00:00:00')`)
	target := r.ShardOf(types.NewString("Tao1"))
	for i := 0; i < r.N(); i++ {
		res, err := r.Shard(i).Query(`SELECT COUNT(*) FROM Activity`)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if i == target {
			want = 1
		}
		if got := res.Rows[0][0].Int(); got != want {
			t.Errorf("shard %d Activity rows = %d, want %d", i, got, want)
		}
	}
	mustExec(t, r, `INSERT INTO Routing VALUES ('Tao1', 'Tao2', NULL)`)
	for i := 0; i < r.N(); i++ {
		res, err := r.Shard(i).Query(`SELECT COUNT(*) FROM Routing`)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].Int(); got != 1 {
			t.Errorf("shard %d Routing rows = %d, want 1 (replicated)", i, got)
		}
	}
}

func TestMultiRowInsertSpansShards(t *testing.T) {
	r := newRouter(t, 4)
	n := mustExec(t, r, `INSERT INTO Activity VALUES `+
		`('Tao1', 'idle', NULL), ('Tao2', 'busy', NULL), ('Tao3', 'idle', NULL), ('Tao4', 'busy', NULL)`)
	if n != 4 {
		t.Fatalf("insert affected %d rows, want 4", n)
	}
	res, err := r.Query(`SELECT COUNT(*) FROM Activity`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 4 {
		t.Fatalf("scattered COUNT(*) = %d, want 4", got)
	}
}

func TestPartitionedDML(t *testing.T) {
	r := newRouter(t, 4)
	mustExec(t, r, `INSERT INTO Activity VALUES ('Tao1', 'idle', NULL), ('Tao2', 'idle', NULL), ('Tao3', 'busy', NULL)`)
	if n := mustExec(t, r, `UPDATE Activity SET value = 'down' WHERE value = 'idle'`); n != 2 {
		t.Errorf("UPDATE affected %d rows across shards, want 2", n)
	}
	if _, err := r.Exec(`UPDATE Activity SET mach_id = 'TaoX'`); err == nil {
		t.Error("UPDATE of the partition column should be rejected")
	}
	if n := mustExec(t, r, `DELETE FROM Activity WHERE value = 'down'`); n != 2 {
		t.Errorf("DELETE affected %d rows across shards, want 2", n)
	}
	res, err := r.Query(`SELECT mach_id FROM Activity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "Tao3" {
		t.Errorf("rows after DML = %v, want [Tao3]", res.Rows)
	}
	// Replicated DML returns shard 0's count, not the sum over replicas.
	mustExec(t, r, `INSERT INTO Routing VALUES ('Tao1', 'Tao2', NULL)`)
	if n := mustExec(t, r, `UPDATE Routing SET neighbor = 'Tao3'`); n != 1 {
		t.Errorf("replicated UPDATE reported %d rows, want 1", n)
	}
}

func TestExplainShardNotes(t *testing.T) {
	r := newRouter(t, 4)
	mustExec(t, r, `INSERT INTO Activity VALUES ('Tao1', 'idle', NULL), ('Tao2', 'busy', NULL)`)
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT value FROM Activity WHERE mach_id = 'Tao1'`, "shards: 1 of 4, pruned 3"},
		{`SELECT value FROM Activity WHERE value = 'idle'`, "shards: 4 of 4, pruned 0"},
		{`SELECT neighbor FROM Routing WHERE mach_id = 'Tao1'`, "shards: 1 of 4, replicated"},
	}
	for _, c := range cases {
		out, err := r.Explain(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("EXPLAIN %s:\n%s\nmissing %q", c.sql, out, c.want)
		}
	}
	// An IN-list may hash to fewer shards than it has members; it must
	// never touch more shards than members.
	out, err := r.Explain(`SELECT value FROM Activity WHERE mach_id IN ('Tao1', 'Tao2')`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "of 4, pruned") || strings.Contains(out, "4 of 4") || strings.Contains(out, "3 of 4") {
		t.Errorf("2-key IN should touch at most 2 shards:\n%s", out)
	}
}

func TestScatterPlanCache(t *testing.T) {
	r := newRouter(t, 4)
	mustExec(t, r, `INSERT INTO Activity VALUES ('Tao1', 'idle', NULL)`)
	const q = `SELECT value FROM Activity WHERE mach_id = 'Tao1'`
	if _, err := r.Query(q); err != nil {
		t.Fatal(err)
	}
	cut, err := r.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Cache().Get("scatter:"+normalize(q), cut.Version); !ok {
		t.Error("scatter plan not cached after first execution")
	}
	// DDL bumps every shard's version, so the cached entry must no longer
	// be served at the new cut.
	mustExec(t, r, `CREATE TABLE Extra (x INT)`)
	cut2, err := r.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if cut2.Version == cut.Version {
		t.Fatal("DDL broadcast did not advance the coherent catalog version")
	}
	if _, ok := r.Cache().Get("scatter:"+normalize(q), cut2.Version); ok {
		t.Error("stale scatter plan served after DDL broadcast")
	}
}

func TestStats(t *testing.T) {
	r := newRouter(t, 3)
	mustExec(t, r, `INSERT INTO Activity VALUES ('Tao1', 'idle', NULL), ('Tao2', 'busy', NULL), ('Tao3', 'idle', NULL), ('Tao4', 'busy', NULL)`)
	mustExec(t, r, `INSERT INTO Routing VALUES ('Tao1', 'Tao2', NULL)`)
	r.SealAll()
	actRows, routRows := 0, 0
	for _, st := range r.Stats() {
		switch st.Table {
		case "Activity":
			if !st.Stats.Partitioned {
				t.Errorf("shard %d: Activity not marked partitioned", st.Shard)
			}
			if st.Stats.Partition.Of != 3 || st.Stats.Partition.Column != "mach_id" {
				t.Errorf("shard %d: partition = %+v", st.Shard, st.Stats.Partition)
			}
			actRows += st.Stats.SealedRows + st.Stats.TailRows
		case "Routing":
			if st.Stats.Partitioned {
				t.Errorf("shard %d: Routing marked partitioned", st.Shard)
			}
			routRows += st.Stats.SealedRows + st.Stats.TailRows
		}
	}
	if actRows != 4 {
		t.Errorf("Activity rows across shards = %d, want 4 (disjoint partitions)", actRows)
	}
	if routRows != 3 {
		t.Errorf("Routing rows across shards = %d, want 3 (one replica each)", routRows)
	}
}

// TestDDLBroadcastCoherence is the plan-cache hardening test: while cuts are
// captured as fast as possible on other goroutines, a stream of DDL
// broadcasts must never let any cut observe shards at different catalog
// versions (which is what would let a version-keyed plan cache serve a plan
// compiled against half-applied DDL). Cut versions must also never move
// backwards.
func TestDDLBroadcastCoherence(t *testing.T) {
	r := newRouter(t, 4)
	mustExec(t, r, `INSERT INTO Activity VALUES ('Tao1', 'idle', NULL)`)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				cut, err := r.Cut()
				if err != nil {
					errs <- err
					return
				}
				if cut.Version < last {
					errs <- fmt.Errorf("cut version went backwards: %d -> %d", last, cut.Version)
					return
				}
				last = cut.Version
				// A query planned at this cut must see one coherent schema
				// on every shard it touches.
				if _, err := r.QueryAt(`SELECT COUNT(*) FROM Activity`, cut); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		mustExec(t, r, fmt.Sprintf(`CREATE TABLE Tmp%d (x INT, y TEXT)`, i))
		mustExec(t, r, fmt.Sprintf(`INSERT INTO Tmp%d VALUES (%d, 'v')`, i, i))
		mustExec(t, r, fmt.Sprintf(`DROP TABLE Tmp%d`, i))
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent cut: %v", err)
	}
	// After the storm, all shards must agree exactly.
	v0 := r.Shard(0).CatalogVersion()
	for i := 1; i < r.N(); i++ {
		if v := r.Shard(i).CatalogVersion(); v != v0 {
			t.Errorf("shard %d at version %d, shard 0 at %d", i, v, v0)
		}
	}
}

// TestConsistentCutPairedInserts races multi-row inserts whose rows hash to
// different shards against scattered queries: because a cross-shard insert
// holds the cut lock exclusively, every query must observe both rows of a
// pair or neither — a torn pair means the "consistent cut" is not one.
func TestConsistentCutPairedInserts(t *testing.T) {
	r := newRouter(t, 4)
	// Find two source names on different shards.
	a := "Tao1"
	b := ""
	for i := 2; i < 64; i++ {
		name := fmt.Sprintf("Tao%d", i)
		if r.ShardOf(types.NewString(name)) != r.ShardOf(types.NewString(a)) {
			b = name
			break
		}
	}
	if b == "" {
		t.Fatal("no pair of sources hashing to distinct shards")
	}

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := r.Exec(fmt.Sprintf(
				`INSERT INTO Activity VALUES ('%s', 'p%d', NULL), ('%s', 'p%d', NULL)`, a, i, b, i)); err != nil {
				done <- err
				return
			}
		}
	}()

	for iter := 0; iter < 60; iter++ {
		res, err := r.Query(`SELECT mach_id, COUNT(*) FROM Activity GROUP BY mach_id ORDER BY mach_id`)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int64{}
		for _, row := range res.Rows {
			counts[row[0].String()] = row[1].Int()
		}
		if counts[a] != counts[b] {
			t.Fatalf("iter %d: torn pair visible: %s=%d rows, %s=%d rows", iter, a, counts[a], b, counts[b])
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
}
