package shard

import (
	"fmt"
	"sort"
	"strings"

	"trac/internal/planner"
	"trac/internal/sqlparser"
	"trac/internal/types"
)

// scatterPlan is the cached decomposition of one SELECT across the shard
// set: per UNION block, the shard set it must touch, the statement each
// shard runs, and the gather recipe that reassembles exactly the rows the
// unsharded engine would produce. Decompositions depend only on the SQL and
// the catalog, so they are cached under the cut's coherent catalog version.
type scatterPlan struct {
	sel     *sqlparser.SelectStmt
	blocks  []*blockPlan
	columns []string
}

// blockPlan is the scatter/gather shape of one SELECT block.
type blockPlan struct {
	shards     []int // ascending shard set
	pruned     int   // shards eliminated by the partition-key bound
	replicated bool  // references no partitioned table: one shard suffices
	stmt       *sqlparser.SelectStmt

	agg *aggGather // non-nil: aggregate block

	// Non-aggregate gather shape: the per-shard statement may carry hidden
	// trailing items for ORDER BY expressions that are not output columns;
	// the gather sorts the extended tuples, strips to nVisible, then applies
	// DISTINCT and LIMIT in the unsharded planner's order.
	nVisible int
	sortKeys []posKey
	distinct bool
	limit    *int64
}

// posKey sorts gathered tuples by an absolute position.
type posKey struct {
	pos  int
	desc bool
}

// partialKind selects the merge rule for one per-shard partial column.
type partialKind int

const (
	mergeCount partialKind = iota // sum of never-null int partial counts
	mergeSum                      // null-skipping exact-int/float sum
	mergeMin                      // null-skipping minimum
	mergeMax                      // null-skipping maximum
)

// finalSpec turns merged partials into the value of one original aggregate
// call: either a direct partial, or an AVG assembled from a SUM and COUNT
// partial pair.
type finalSpec struct {
	avg      bool
	partial  int // !avg: direct partial index
	sum, cnt int // avg: partial indexes
}

// aggGather reassembles an aggregate block: per-shard statements return
// [group keys..., partials...]; the gather merges partials per group key,
// finalizes the original aggregate calls, and replays HAVING / ORDER BY /
// projection / DISTINCT / LIMIT exactly as the unsharded planner's
// finishGrouped tail does.
type aggGather struct {
	nKeys    int
	keySQL   []string
	partials []partialKind
	finals   []finalSpec
	aggSQL   []string // finals[i] realizes the call with this SQL text
	items    []sqlparser.Expr
	sel      *sqlparser.SelectStmt // Having/OrderBy/Distinct/Limit/Items source
}

// decompose splits a parsed SELECT into per-block scatter plans, mirroring
// the unsharded planner's planUnion/planBlock split.
func (r *Router) decompose(sel *sqlparser.SelectStmt) (*scatterPlan, error) {
	sp := &scatterPlan{sel: sel}
	blocks := []*sqlparser.SelectStmt{sel}
	if len(sel.Union) > 0 {
		head := *sel
		head.Union = nil
		head.OrderBy = nil
		head.Limit = nil
		blocks = append([]*sqlparser.SelectStmt{&head}, sel.Union...)
	}
	for i, b := range blocks {
		bp, columns, err := r.decomposeBlock(b)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			sp.columns = columns
		} else if len(columns) != len(sp.columns) {
			return nil, fmt.Errorf("planner: UNION blocks have different arity (%d vs %d)",
				len(sp.columns), len(columns))
		}
		sp.blocks = append(sp.blocks, bp)
	}
	return sp, nil
}

// decomposeBlock computes one block's shard set and per-shard statement.
func (r *Router) decomposeBlock(b *sqlparser.SelectStmt) (*blockPlan, []string, error) {
	bp := &blockPlan{}

	// Constant SELECT: no FROM, no data — any one shard answers it.
	if len(b.From) == 0 {
		bp.shards, bp.replicated = []int{0}, true
		bp.stmt = b
		bp.nVisible = len(b.Items)
		columns := make([]string, len(b.Items))
		for i, it := range b.Items {
			columns[i] = itemName(it)
		}
		return bp, columns, nil
	}

	if err := r.shardSet(b, bp); err != nil {
		return nil, nil, err
	}

	items, columns, err := r.expandItems(b)
	if err != nil {
		return nil, nil, err
	}
	hasAgg := false
	for _, it := range items {
		if _, ok := it.(*sqlparser.FuncCall); ok {
			hasAgg = true
		}
	}
	if hasAgg || len(b.GroupBy) > 0 || b.Having != nil {
		if err := r.decomposeAgg(b, bp, items); err != nil {
			return nil, nil, err
		}
		return bp, columns, nil
	}
	if err := r.decomposePlain(b, bp, items); err != nil {
		return nil, nil, err
	}
	return bp, columns, nil
}

// shardSet computes which shards a block must touch. A block over only
// replicated tables runs on shard 0 (every shard holds the full data); a
// block over one partitioned table scatters to the shards its partition-key
// bound hashes to, or to all shards when the WHERE clause carries no such
// bound. Two partitioned tables in one block would need co-partitioned or
// shuffled joins, which the router does not implement.
func (r *Router) shardSet(b *sqlparser.SelectStmt, bp *blockPlan) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cat := r.shards[0].Catalog()
	type partRef struct {
		binding string
		col     string
		kind    types.Kind
	}
	var prefs []partRef
	for _, ref := range b.From {
		col, ok := r.part[strings.ToLower(ref.Name)]
		if !ok {
			continue
		}
		tbl, err := cat.Get(ref.Name)
		if err != nil {
			return err
		}
		ci := tbl.Schema.ColumnIndex(col)
		prefs = append(prefs, partRef{binding: ref.Binding(), col: col, kind: tbl.Schema.Columns[ci].Kind})
	}
	switch len(prefs) {
	case 0:
		bp.shards, bp.replicated = []int{0}, true
		return nil
	case 1:
	default:
		return fmt.Errorf("shard: query joins %d partitioned tables; only one partitioned table per block is supported", len(prefs))
	}
	p := prefs[0]
	keys, ok := planner.PartitionKeys(b.Where, p.binding, p.col, p.kind)
	if !ok {
		bp.shards = make([]int, len(r.shards))
		for i := range bp.shards {
			bp.shards[i] = i
		}
		return nil
	}
	set := make(map[int]bool, len(keys))
	for _, k := range keys {
		set[r.ShardOf(k)] = true
	}
	for s := range set {
		bp.shards = append(bp.shards, s)
	}
	sort.Ints(bp.shards)
	bp.pruned = len(r.shards) - len(bp.shards)
	return nil
}

// decomposePlain builds the per-shard statement and gather shape for a
// non-aggregate block.
func (r *Router) decomposePlain(b *sqlparser.SelectStmt, bp *blockPlan, items []sqlparser.Expr) error {
	bp.nVisible = len(items)
	bp.distinct = b.Distinct
	bp.limit = b.Limit

	shardSel := &sqlparser.SelectStmt{
		Distinct: b.Distinct,
		Items:    b.Items,
		From:     b.From,
		Where:    b.Where,
		Limit:    b.Limit,
	}
	if len(b.OrderBy) == 0 {
		// Without ORDER BY a per-shard LIMIT is a valid prefix of each
		// shard's arbitrary order; the gather truncates the concatenation.
		bp.stmt = shardSel
		return nil
	}

	// Resolve ORDER BY keys to output positions, mirroring planBlock:
	// 1-based positions and bare aliases resolve to select items; anything
	// else becomes a hidden trailing item each shard also returns.
	var hidden []sqlparser.SelectItem
	for _, o := range b.OrderBy {
		oe := o.Expr
		if lit, ok := oe.(*sqlparser.Literal); ok && lit.Val.Kind() == types.KindInt {
			pos := int(lit.Val.Int()) - 1
			if pos < 0 || pos >= len(items) {
				return fmt.Errorf("planner: ORDER BY position %d out of range", pos+1)
			}
			bp.sortKeys = append(bp.sortKeys, posKey{pos: pos, desc: o.Desc})
			continue
		}
		if cr, ok := oe.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			alias := -1
			for i, it := range b.Items {
				if strings.EqualFold(it.Alias, cr.Column) {
					alias = i
					break
				}
			}
			if alias >= 0 {
				bp.sortKeys = append(bp.sortKeys, posKey{pos: alias, desc: o.Desc})
				continue
			}
		}
		// An ORDER BY expression textually identical to an output item
		// already travels with the row.
		match := -1
		for i, it := range items {
			if it.SQL() == oe.SQL() {
				match = i
				break
			}
		}
		if match >= 0 {
			bp.sortKeys = append(bp.sortKeys, posKey{pos: match, desc: o.Desc})
			continue
		}
		hidden = append(hidden, sqlparser.SelectItem{Expr: oe})
		bp.sortKeys = append(bp.sortKeys, posKey{pos: len(items) + len(hidden) - 1, desc: o.Desc})
	}

	if len(hidden) > 0 {
		shardSel.Items = append(append([]sqlparser.SelectItem(nil), b.Items...), hidden...)
		if b.Distinct {
			// Hidden columns would change DISTINCT's grouping; dedup (and
			// therefore LIMIT, which applies post-dedup) move to the gather.
			shardSel.Distinct = false
			shardSel.Limit = nil
		}
	}
	if shardSel.Limit != nil {
		// Keep the per-shard LIMIT as a top-k: each shard's ordered prefix
		// is a superset of its contribution to the global top-k.
		shardSel.OrderBy = b.OrderBy
	}
	bp.stmt = shardSel
	return nil
}

// decomposeAgg builds the per-shard partial-aggregate statement and the
// gather recipe for an aggregate block.
func (r *Router) decomposeAgg(b *sqlparser.SelectStmt, bp *blockPlan, items []sqlparser.Expr) error {
	ag := &aggGather{sel: b, items: items}

	// Resolve GROUP BY keys like finishGrouped: a bare alias resolves to
	// its select-list expression; keySQL is the canonical matching text.
	var keyExprs []sqlparser.Expr
	for _, g := range b.GroupBy {
		ge := g
		if cr, ok := g.(*sqlparser.ColumnRef); ok && cr.Table == "" {
			for _, it := range b.Items {
				if strings.EqualFold(it.Alias, cr.Column) && !it.Star {
					ge = it.Expr
					break
				}
			}
		}
		keyExprs = append(keyExprs, ge)
		ag.keySQL = append(ag.keySQL, ge.SQL())
	}
	ag.nKeys = len(keyExprs)

	// Collect the distinct aggregate calls reachable from items, HAVING and
	// ORDER BY (the same set finishGrouped's compile hook discovers), then
	// decompose each into mergeable partials. AVG(x) needs SUM(x)+COUNT(x);
	// every other call merges as itself. Identical partials are shared.
	var calls []*sqlparser.FuncCall
	seen := make(map[string]bool)
	collect := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if fc, ok := x.(*sqlparser.FuncCall); ok && !seen[fc.SQL()] {
				seen[fc.SQL()] = true
				calls = append(calls, fc)
				return false
			}
			return true
		})
	}
	for _, it := range items {
		collect(it)
	}
	if b.Having != nil {
		collect(b.Having)
	}
	for _, o := range b.OrderBy {
		collect(o.Expr)
	}

	var partialCalls []*sqlparser.FuncCall
	partialIdx := make(map[string]int)
	addPartial := func(fc *sqlparser.FuncCall, kind partialKind) int {
		key := fc.SQL()
		if i, ok := partialIdx[key]; ok {
			return i
		}
		partialIdx[key] = len(partialCalls)
		partialCalls = append(partialCalls, fc)
		ag.partials = append(ag.partials, kind)
		return len(partialCalls) - 1
	}
	for _, fc := range calls {
		ag.aggSQL = append(ag.aggSQL, fc.SQL())
		switch fc.Name {
		case sqlparser.FuncCount:
			ag.finals = append(ag.finals, finalSpec{partial: addPartial(fc, mergeCount)})
		case sqlparser.FuncSum:
			ag.finals = append(ag.finals, finalSpec{partial: addPartial(fc, mergeSum)})
		case sqlparser.FuncMin:
			ag.finals = append(ag.finals, finalSpec{partial: addPartial(fc, mergeMin)})
		case sqlparser.FuncMax:
			ag.finals = append(ag.finals, finalSpec{partial: addPartial(fc, mergeMax)})
		case sqlparser.FuncAvg:
			sum := addPartial(&sqlparser.FuncCall{Name: sqlparser.FuncSum, Arg: fc.Arg}, mergeSum)
			cnt := addPartial(&sqlparser.FuncCall{Name: sqlparser.FuncCount, Arg: fc.Arg}, mergeCount)
			ag.finals = append(ag.finals, finalSpec{avg: true, sum: sum, cnt: cnt})
		default:
			return fmt.Errorf("shard: unsupported aggregate %s", fc.Name)
		}
	}

	// Per-shard statement: grouped partials, no HAVING/ORDER BY/DISTINCT/
	// LIMIT — those apply to globally merged groups only.
	shardItems := make([]sqlparser.SelectItem, 0, ag.nKeys+len(partialCalls))
	for _, ge := range keyExprs {
		shardItems = append(shardItems, sqlparser.SelectItem{Expr: ge})
	}
	for _, fc := range partialCalls {
		shardItems = append(shardItems, sqlparser.SelectItem{Expr: fc})
	}
	bp.stmt = &sqlparser.SelectStmt{
		Items:   shardItems,
		From:    b.From,
		Where:   b.Where,
		GroupBy: keyExprs,
	}
	bp.agg = ag
	return nil
}

// expandItems resolves stars against shard 0's catalog (all shards share one
// schema) and returns per-output-column expressions plus column names — the
// shard-side mirror of the planner's expandItems.
func (r *Router) expandItems(b *sqlparser.SelectStmt) ([]sqlparser.Expr, []string, error) {
	cat := r.shards[0].Catalog()
	var items []sqlparser.Expr
	var columns []string
	for _, it := range b.Items {
		if !it.Star {
			items = append(items, it.Expr)
			columns = append(columns, itemName(it))
			continue
		}
		for _, ref := range b.From {
			if it.Table != "" && !strings.EqualFold(it.Table, ref.Binding()) {
				continue
			}
			tbl, err := cat.Get(ref.Name)
			if err != nil {
				return nil, nil, err
			}
			for _, col := range tbl.Schema.Columns {
				items = append(items, &sqlparser.ColumnRef{Table: ref.Binding(), Column: col.Name})
				columns = append(columns, col.Name)
			}
		}
	}
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("planner: empty select list")
	}
	return items, columns, nil
}

// itemName mirrors the planner's output-column naming.
func itemName(it sqlparser.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
		return cr.Column
	}
	if fc, ok := it.Expr.(*sqlparser.FuncCall); ok {
		return strings.ToLower(string(fc.Name))
	}
	return it.Expr.SQL()
}
