package shard_test

import (
	"fmt"
	"testing"

	"trac/internal/core/report"
	"trac/internal/engine"
	"trac/internal/shard"
	"trac/internal/workload"
)

var equivSpec = workload.Spec{TotalRows: 3000, DataSources: 100}

// buildPair creates the same workload dataset unsharded and behind an
// n-shard router (Activity hash-partitioned, Routing/Heartbeat replicated),
// both with the NullProbe fixture.
func buildPair(t *testing.T, n int) (*engine.DB, *shard.Router) {
	t.Helper()
	db, err := workload.Build(equivSpec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := workload.BuildSharded(equivSpec, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range workload.NullProbeStmts() {
		db.MustExec(stmt)
		mustExec(t, r, stmt)
	}
	return db, r
}

// setMode applies one planner configuration to every shard.
func setMode(r *shard.Router, disableVectorized, disableStatPushdown bool, parallelThreshold, maxParallel int) {
	for i := 0; i < r.N(); i++ {
		pl := r.Shard(i).Planner()
		pl.DisableVectorized = disableVectorized
		pl.DisableStatPushdown = disableStatPushdown
		pl.ParallelThreshold = parallelThreshold
		pl.MaxParallel = maxParallel
	}
}

// TestShardedMatchesUnsharded is the cross-shard equivalence property: the
// full corpus (Q1–Q4, generated recency queries, NULL semantics, joins,
// UNION, GROUP BY) at 1, 3 and 8 shards must be row-identical to the
// unsharded engine under every planner mode — the unsharded suite already
// proves the modes agree with each other, so the unsharded default mode is
// the baseline for all of them.
func TestShardedMatchesUnsharded(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			db, r := buildPair(t, n)
			corpus, err := workload.EquivCorpus(db.Catalog())
			if err != nil {
				t.Fatal(err)
			}
			modes := []struct {
				name                string
				disableVectorized   bool
				disableStatPushdown bool
				parallelThreshold   int
				maxParallel         int
			}{
				{name: "row", disableVectorized: true},
				{name: "vectorized"},
				{name: "vectorized-nopushdown", disableStatPushdown: true},
				{name: "vectorized-parallel", parallelThreshold: 50, maxParallel: 4},
				{name: "vectorized-parallel-nopushdown", disableStatPushdown: true, parallelThreshold: 50, maxParallel: 4},
				{name: "row-parallel", disableVectorized: true, parallelThreshold: 50, maxParallel: 4},
			}
			sawScatter := false
			for qi, sql := range corpus {
				res, err := db.Query(sql)
				if err != nil {
					t.Fatalf("q%d unsharded %s: %v", qi, sql, err)
				}
				baseline := workload.RowSet(res)
				for _, m := range modes {
					setMode(r, m.disableVectorized, m.disableStatPushdown, m.parallelThreshold, m.maxParallel)
					sres, err := r.Query(sql)
					if err != nil {
						t.Fatalf("q%d [%s] sharded %s: %v", qi, m.name, sql, err)
					}
					if sres.Parallel > 1 {
						sawScatter = true
					}
					if got := workload.RowSet(sres); fmt.Sprint(got) != fmt.Sprint(baseline) {
						t.Errorf("q%d [%s] sharded diverges at %d shards\nquery: %s\nunsharded: %v\nsharded:   %v",
							qi, m.name, n, sql, baseline, got)
					}
				}
				setMode(r, false, false, 0, 0)
			}
			if n > 1 && !sawScatter {
				t.Error("no corpus query ever fanned out across shards")
			}
		})
	}
}

// TestShardedMatchesUnshardedSealed repeats the default-mode corpus run over
// dual-format heaps: both sides sealed into columnar segments in small
// chunks, then grown identical unsealed row tails, so scans cross zone-map
// pruning and the row tail on every shard.
func TestShardedMatchesUnshardedSealed(t *testing.T) {
	db, r := buildPair(t, 3)
	for _, name := range db.Catalog().Names() {
		tbl, err := db.Catalog().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tbl.SetSealThreshold(200)
	}
	for i := 0; i < r.N(); i++ {
		cat := r.Shard(i).Catalog()
		for _, name := range cat.Names() {
			tbl, err := cat.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			tbl.SetSealThreshold(200)
		}
	}
	db.SealAll()
	r.SealAll()
	for _, sql := range []string{
		`INSERT INTO Activity VALUES ('src-tail', 'idle', '2006-03-15 00:01:00')`,
		`INSERT INTO Activity VALUES ('src-tail', 'busy', NULL)`,
		`INSERT INTO Routing VALUES ('src-tail', 'Tao1', '2006-03-15 00:01:00')`,
		`INSERT INTO NullProbe VALUES (7, NULL, 0.45)`,
		`INSERT INTO NullProbe VALUES (8, 'idle', NULL)`,
	} {
		db.MustExec(sql)
		mustExec(t, r, sql)
	}
	corpus, err := workload.EquivCorpus(db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	for qi, sql := range corpus {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("q%d unsharded: %v", qi, err)
		}
		sres, err := r.Query(sql)
		if err != nil {
			t.Fatalf("q%d sharded: %v", qi, err)
		}
		if got, want := workload.RowSet(sres), workload.RowSet(res); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("q%d sealed-mixed diverges\nquery: %s\nunsharded: %v\nsharded:   %v", qi, sql, want, got)
		}
	}
}

// TestShardedRecencyReportMatches compares the full recency report — result
// rows, relevant-source classification, least/most recency and the bound of
// inconsistency — between report.Run on the unsharded engine and
// Router.RecencyReport at several shard counts, for Q1–Q4 and an
// unselective probe.
func TestShardedRecencyReportMatches(t *testing.T) {
	queries := []string{}
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4"} {
		sql, err := workload.Query(name)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, sql)
	}
	queries = append(queries, `SELECT mach_id, value FROM Activity WHERE value = 'idle'`)

	for _, n := range []int{1, 3, 8} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			db, r := buildPair(t, n)
			for qi, sql := range queries {
				for _, cfg := range []report.Config{
					{},
					{Method: report.Naive, SkipTempTables: true},
				} {
					sess := db.NewSession()
					want, err := report.Run(sess, sql, cfg)
					if err != nil {
						t.Fatalf("q%d unsharded report: %v", qi, err)
					}
					ssess := r.Shard(0).NewSession()
					got, err := r.RecencyReport(ssess, sql, cfg)
					if err != nil {
						t.Fatalf("q%d sharded report: %v", qi, err)
					}
					if a, b := workload.RowSet(got.Result), workload.RowSet(want.Result); fmt.Sprint(a) != fmt.Sprint(b) {
						t.Errorf("q%d: result rows diverge\nsharded:   %v\nunsharded: %v", qi, a, b)
					}
					if got.Empty != want.Empty || got.RecencySQL != want.RecencySQL {
						t.Errorf("q%d: generated recency query diverges: empty %v/%v sql %q vs %q",
							qi, got.Empty, want.Empty, got.RecencySQL, want.RecencySQL)
					}
					if len(got.Normal) != len(want.Normal) || len(got.Exceptional) != len(want.Exceptional) {
						t.Fatalf("q%d: classification diverges: %d/%d normal, %d/%d exceptional",
							qi, len(got.Normal), len(want.Normal), len(got.Exceptional), len(want.Exceptional))
					}
					for i := range got.Normal {
						if got.Normal[i] != want.Normal[i] {
							t.Errorf("q%d: normal[%d] = %+v, want %+v", qi, i, got.Normal[i], want.Normal[i])
						}
					}
					if got.Least != want.Least || got.Most != want.Most || got.Bound != want.Bound {
						t.Errorf("q%d: bound diverges: [%v, %v] width %v vs [%v, %v] width %v",
							qi, got.Least, got.Most, got.Bound, want.Least, want.Most, want.Bound)
					}
					sess.Close()
					ssess.Close()
				}
			}
			// Sessions persisting temp tables bump only shard 0; the router
			// must settle versions so later cuts stay coherent.
			r.SettleVersions()
			if _, err := r.Query(`SELECT COUNT(*) FROM Activity`); err != nil {
				t.Fatalf("query after reports: %v", err)
			}
		})
	}
}

// TestShardedReportTempTables checks a sharded report's temp tables
// materialize on shard 0's session and stay queryable through the router
// (non-partitioned tables route to shard 0), with SettleVersions healing the
// shard-0-only catalog bumps that session persistence performs.
func TestShardedReportTempTables(t *testing.T) {
	_, r := buildPair(t, 3)
	sess := r.Shard(0).NewSession()
	defer sess.Close()
	sql, err := workload.Query("Q1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.RecencyReport(sess, sql, report.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NormalTable == "" {
		t.Fatal("report did not materialize a normal temp table")
	}
	r.SettleVersions()
	res, err := r.Query(`SELECT COUNT(*) FROM ` + rep.NormalTable)
	if err != nil {
		t.Fatalf("temp table not queryable through router: %v", err)
	}
	if got := res.Rows[0][0].Int(); got != int64(len(rep.Normal)) {
		t.Errorf("temp table has %d rows, report has %d normal sources", got, len(rep.Normal))
	}
	if rep.Bound < 0 {
		t.Errorf("negative bound of inconsistency %v", rep.Bound)
	}
}
