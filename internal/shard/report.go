package shard

import (
	"fmt"
	"time"

	"trac/internal/core/report"
	"trac/internal/engine"
)

// RecencyReport runs a recency-reported query across the shards: the user
// query and its generated recency query both execute under ONE consistent
// cut (the paper's shared-snapshot requirement lifted to the shard level),
// the per-shard (sid, recency) partials are gathered through the ordinary
// scatter path — the generated query's relevant-source bound is itself a
// partition-key bound, so shard pruning applies to the recency arms exactly
// as it does to user probes — and the classification/summary/temp-table
// stages reuse the single-engine report code verbatim.
//
// Preparation (parse + recency generation) runs against shard 0's catalog,
// which the DDL broadcast keeps identical on every shard, and is cached in
// shard 0's plan cache like any prepared report. Temp tables materialize on
// sess (a shard-0 session): they are replicated nowhere, and the gather
// routes queries over non-partitioned tables to shard 0, so they stay
// queryable through the router.
func (r *Router) RecencyReport(sess *engine.Session, userSQL string, cfg report.Config) (*report.Report, error) {
	if sess.DB() != r.shards[0] {
		return nil, fmt.Errorf("shard: report session must belong to shard 0")
	}
	var (
		p   *report.Prepared
		hit bool
		err error
	)
	start := time.Now()
	if cfg.DisableCache {
		p, err = report.Prepare(r.shards[0], userSQL, cfg)
	} else {
		p, hit, err = report.PrepareCached(r.shards[0], userSQL, cfg)
	}
	if err != nil {
		return nil, err
	}
	genTime := p.GenTime()
	if hit {
		genTime = time.Since(start)
	}

	rep := &report.Report{
		Method:  cfg.Method,
		Minimal: p.Generated.Minimal,
		Reasons: p.Generated.Reasons,
		Empty:   p.Generated.Empty,
	}
	if p.Generated.Stmt != nil {
		rep.RecencySQL = p.Generated.SQL
	}

	// One cut for both queries: a report never mixes shard states.
	cut, err := r.Cut()
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	res, err := r.QueryStmtAt(p.UserStmt, userSQL, cut)
	if err != nil {
		return nil, err
	}
	rep.Result = res
	rep.Timing.UserQuery = time.Since(t0)

	var pairs []report.SourceRecency
	if p.Generated.Stmt != nil {
		t1 := time.Now()
		rres, err := r.QueryStmtAt(p.Generated.Stmt, p.Generated.SQL, cut)
		if err != nil {
			return nil, fmt.Errorf("report: recency query failed: %w", err)
		}
		rep.Timing.RecencyQuery = time.Since(t1)
		pairs = make([]report.SourceRecency, 0, len(rres.Rows))
		for _, row := range rres.Rows {
			if len(row) < 2 || row[0].IsNull() || row[1].IsNull() {
				continue
			}
			pairs = append(pairs, report.SourceRecency{Sid: row[0].String(), Recency: row[1].Time()})
		}
	}

	t2 := time.Now()
	report.Summarize(rep, pairs, cfg)
	if !cfg.SkipTempTables {
		if err := report.Materialize(sess, rep); err != nil {
			return nil, err
		}
	}
	rep.Timing.Stats = time.Since(t2)
	rep.Timing.Generate = genTime
	rep.CachedPlan = hit
	return rep, nil
}
