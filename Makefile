GO ?= go

.PHONY: build test check bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: vet everything, then run the concurrency-sensitive
# packages (parallel scan, plan cache, MVCC) under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/exec/... ./internal/engine/... ./internal/txn/...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkParallelScan|BenchmarkPreparedReportCached' -benchtime 3x .
