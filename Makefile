GO ?= go

.PHONY: build test lint lint-fix check chaos crash bench bench-smoke bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the stock vet plus tracvet, the repo's own invariant suite
# (catalog-version bumps, lock pairing, error wrapping, cancelable loops,
# owned goroutines, lock-order cycles, batch-pool ownership, crashfs
# discipline, channel leaks). Exits non-zero on any finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/tracvet ./...

# lint-fix applies tracvet's mechanical remedies in place (errwrap's final
# %v -> %w, synccheck's explicit `_ =` discard), then re-lints so the exit
# status reflects what a human still has to look at.
lint-fix:
	$(GO) run ./cmd/tracvet -fix ./...

# check is the CI gate: lint everything, run the concurrency-sensitive
# packages (parallel scan, plan cache, MVCC) under the race detector, run
# the crash-injection recovery sweeps, then smoke every benchmark so
# bench-only code paths cannot rot unnoticed.
check: lint bench-smoke crash
	$(GO) test -race ./internal/exec/... ./internal/engine/... ./internal/txn/... ./internal/shard/... ./internal/workload/... ./internal/server/... ./client/...

# crash kills the storage stack at every mutating filesystem operation and
# asserts the reopened database is a consistent cut: the engine sweep covers
# WAL append/fsync, segment spill, dump and manifest writes across repeated
# checkpoints; the sniffer sweep covers a full ingestion fleet recovering
# exactly-once against a never-crashed reference.
crash:
	$(GO) test -race -count=1 -run 'TestCrashRecoverySweep' ./internal/engine/
	$(GO) test -race -count=1 -run 'TestFleetCrashRecoveryExactlyOnce' ./internal/sniffer/

# bench-smoke runs every Go benchmark exactly once — not for numbers, just
# to prove the benchmark harnesses still build, run, and cross-check.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# chaos runs the ingestion robustness suite with elevated fault-injection
# rates and the race detector: fault-injected logs, retry/backoff, circuit
# breakers, durable-offset restarts, and the exactly-once drain check.
chaos:
	TRAC_CHAOS=1 $(GO) test -race -count=1 ./internal/gridsim/... ./internal/sniffer/...

# bench runs the Go benchmarks once through, then regenerates BENCH_exec.json
# (the checked-in vectorized-vs-row executor report) via tracbench. The
# execbench total matches the 200k-row Go benchmark dataset: per-row executor
# overhead — what vectorization removes — dominates there, while much larger
# heaps leave both sides memory-bound on the row heap. The shardbench runs at
# 1M rows so per-shard scan time dominates the fixed scatter-gather cost and
# the pruned-probe speedup reflects data volume, not report overhead.
bench:
	$(GO) test -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/tracbench -execbench -total 200000 -iterations 11 -o BENCH_exec.json
	$(GO) run ./cmd/tracbench -storagebench -total 200000 -iterations 11 -storage-o BENCH_storage.json
	$(GO) run ./cmd/tracbench -aggbench -total 200000 -iterations 11 -agg-o BENCH_agg.json
	$(GO) run ./cmd/tracbench -recoverybench -total 200000 -iterations 5 -recovery-o BENCH_recovery.json
	$(GO) run ./cmd/tracbench -shardbench -total 1000000 -iterations 5 -shard-o BENCH_shard.json
	$(GO) run ./cmd/tracbench -servebench -serve-o BENCH_serve.json

bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkParallelScan|BenchmarkPreparedReportCached' -benchtime 3x .
