module trac

go 1.22
