package trac_test

import (
	"fmt"
	"strings"
	"testing"

	"trac"
)

// TestShardedPublicAPI drives the sharded database through the public
// surface only: open with shards, partition, load through SQL, heartbeat,
// query with pruning, and run a recency report under one consistent cut.
func TestShardedPublicAPI(t *testing.T) {
	db := trac.Open(trac.WithShards(4))
	if db.Shards() != 4 || db.Router() == nil {
		t.Fatalf("Shards() = %d, Router() = %v", db.Shards(), db.Router())
	}
	db.MustExec(`CREATE TABLE Activity (mach_id TEXT, value TEXT, event_time TIMESTAMP)`)
	db.MustExec(`CREATE TABLE Heartbeat (sid TEXT PRIMARY KEY, recency TIMESTAMP)`)
	if err := db.PartitionTable("Activity", "mach_id"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetSourceColumn("Activity", "mach_id"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetColumnDomain("Activity", "value", trac.StringDomain("busy", "idle")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		db.MustExec(fmt.Sprintf(
			`INSERT INTO Activity VALUES ('Tao%d', 'idle', '2006-03-15 00:00:%02d')`, i, i))
		if err := db.Heartbeat(fmt.Sprintf("Tao%d", i), fmt.Sprintf("2006-03-15 00:10:%02d", i)); err != nil {
			t.Fatal(err)
		}
	}

	res, err := db.Query(`SELECT COUNT(*) FROM Activity`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != 8 {
		t.Fatalf("COUNT(*) = %d, want 8", got)
	}

	plan, err := db.Explain(`SELECT value FROM Activity WHERE mach_id = 'Tao1'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "of 4, pruned") {
		t.Errorf("EXPLAIN missing shard-pruning note:\n%s", plan)
	}

	sess := db.NewSession()
	defer sess.Close()
	rep, err := sess.RecencyReport(`SELECT value FROM Activity WHERE mach_id IN ('Tao1', 'Tao2')`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Result.Rows) != 2 {
		t.Errorf("user query returned %d rows, want 2", len(rep.Result.Rows))
	}
	if got := len(rep.Normal) + len(rep.Exceptional); got != 2 {
		t.Errorf("report covers %d sources, want 2 (Tao1, Tao2)", got)
	}
	if rep.NormalTable == "" {
		t.Error("sharded report did not materialize temp tables")
	}

	pr, err := db.PrepareReport(`SELECT value FROM Activity WHERE mach_id = 'Tao3'`)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := pr.Execute(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep2.Normal) + len(rep2.Exceptional); got != 1 {
		t.Errorf("prepared report covers %d sources, want 1", got)
	}

	// Persistence stays explicitly unsupported when sharded.
	if err := db.SaveFile(t.TempDir() + "/dump"); err == nil {
		t.Error("SaveFile should fail on a sharded database")
	}
	if err := db.AttachWAL(t.TempDir() + "/wal"); err == nil {
		t.Error("AttachWAL should fail on a sharded database")
	}
}
